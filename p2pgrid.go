// Package p2pgrid is a peer-to-peer desktop grid: a decentralized
// job-submission and execution system in which every peer can inject
// jobs, own and monitor them, and run jobs for others, with matchmaking
// performed over DHT overlays (Chord with a Rendezvous Node Tree, or a
// Content-Addressable Network with a virtual dimension) instead of a
// central server.
//
// It reproduces the system of Kim et al., "Creating a Robust Desktop
// Grid using Peer-to-Peer Services" (IPDPS 2007). See DESIGN.md for the
// architecture and EXPERIMENTS.md for the paper reproduction.
//
// The package front door is Cluster, a deterministic simulated grid:
//
//	c := p2pgrid.New(p2pgrid.Config{Nodes: 100, Algorithm: p2pgrid.RNTree})
//	c.Submit(0, p2pgrid.Job{Runtime: time.Minute, MinCPU: 2})
//	report := c.Run(2 * time.Hour)
//	fmt.Println(report.WaitTimes())
//
// For live TCP deployments, see cmd/gridnode and cmd/gridctl.
package p2pgrid

import (
	"fmt"
	"time"

	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Algorithm selects the matchmaking system.
type Algorithm int

// Matchmaking algorithms. RNTree and CAN are the paper's two
// decentralized schemes; CANPush adds the load-based pushing
// improvement; Central is the omniscient baseline; TTL and Random are
// related-work baselines.
const (
	RNTree Algorithm = iota
	CAN
	CANPush
	Central
	TTL
	Random
)

func (a Algorithm) String() string {
	return experiments.Algorithm(a).String()
}

// Node describes one peer's resources.
type Node struct {
	CPU      float64 // relative CPU speed, 1-10
	MemoryMB float64
	DiskGB   float64
	OS       string
}

// DefaultNode is a mid-range peer.
func DefaultNode() Node {
	return Node{CPU: 5, MemoryMB: 4096, DiskGB: 100, OS: "linux"}
}

func (n Node) caps() resource.Vector {
	return resource.Vector{n.CPU, n.MemoryMB, n.DiskGB}
}

// Job describes one job to submit: its minimum resource requirements
// (zero means unconstrained) and nominal runtime.
type Job struct {
	MinCPU      float64
	MinMemoryMB float64
	MinDiskGB   float64
	OS          string // required OS, "" = any
	Runtime     time.Duration
	InputKB     int
}

func (j Job) cons() resource.Constraints {
	c := resource.Unconstrained
	if j.MinCPU > 0 {
		c = c.Require(resource.CPU, j.MinCPU)
	}
	if j.MinMemoryMB > 0 {
		c = c.Require(resource.Memory, j.MinMemoryMB)
	}
	if j.MinDiskGB > 0 {
		c = c.Require(resource.Disk, j.MinDiskGB)
	}
	if j.OS != "" {
		c = c.RequireOS(j.OS)
	}
	return c
}

// Config parameterizes a simulated cluster.
type Config struct {
	// Nodes is the peer count (default 64).
	Nodes int
	// Algorithm selects matchmaking (default RNTree).
	Algorithm Algorithm
	// Seed makes the simulation reproducible (default 1).
	Seed int64
	// NodeSpec customizes peer resources (default: heterogeneous mix).
	NodeSpec func(i int) Node
	// Maintenance runs the periodic overlay repair loops; enable it
	// when injecting failures (default off).
	Maintenance bool
	// HeartbeatEvery etc. tune the grid layer; zero values pick the
	// defaults documented in the paper reproduction.
	HeartbeatEvery time.Duration
	RunDeadAfter   time.Duration
	OwnerDeadAfter time.Duration
	// SpeedScaling divides job runtime by the run node's CPU speed.
	SpeedScaling bool
}

// JobID identifies a submitted job.
type JobID = ids.ID

// Cluster is a deterministic simulated desktop grid.
type Cluster struct {
	cfg    Config
	d      *experiments.Deployment
	nextAt []time.Duration
	subs   []submission
	ran    bool
}

type submission struct {
	at  time.Duration
	job Job
}

// New builds a cluster; jobs queue via Submit and execute during Run.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.NodeSpec == nil {
		cfg.NodeSpec = func(i int) Node {
			return Node{
				CPU:      float64(1 + i%10),
				MemoryMB: float64(256 * (1 + i%8)),
				DiskGB:   float64(10 * (1 + i%16)),
				OS:       "linux",
			}
		}
	}
	specs := make([]workload.NodeSpec, cfg.Nodes)
	for i := range specs {
		n := cfg.NodeSpec(i)
		specs[i] = workload.NodeSpec{Caps: n.caps(), OS: n.OS}
	}
	wcfg := workload.NewConfig()
	wcfg.Nodes = cfg.Nodes
	wcfg.Jobs = 0 // jobs come from Submit, not the generator
	wcfg.Seed = cfg.Seed
	d := experiments.Build(experiments.Scenario{
		Alg:         experiments.Algorithm(cfg.Algorithm),
		Workload:    wcfg,
		NetSeed:     cfg.Seed + 1000,
		Maintenance: cfg.Maintenance,
		NodeSpecs:   specs,
		Grid: grid.Config{
			HeartbeatEvery: cfg.HeartbeatEvery,
			RunDeadAfter:   cfg.RunDeadAfter,
			OwnerDeadAfter: cfg.OwnerDeadAfter,
			SpeedScaling:   cfg.SpeedScaling,
		},
	})
	return &Cluster{cfg: cfg, d: d}
}

// Submit schedules a job for injection at the given virtual instant
// (measured from simulation start). It must be called before Run.
func (c *Cluster) Submit(at time.Duration, job Job) {
	if c.ran {
		panic("p2pgrid: Submit after Run")
	}
	c.subs = append(c.subs, submission{at: at, job: job})
}

// SubmitBatch schedules n identical jobs at the given interval.
func (c *Cluster) SubmitBatch(start time.Duration, interval time.Duration, n int, job Job) {
	for i := 0; i < n; i++ {
		c.Submit(start+time.Duration(i)*interval, job)
	}
}

// Crash schedules a node failure at the given instant.
func (c *Cluster) Crash(node int, at time.Duration) {
	if node < 0 || node >= len(c.d.Eps) {
		panic(fmt.Sprintf("p2pgrid: node %d out of range", node))
	}
	ep := c.d.Eps[node]
	c.d.Engine.Schedule(at, func() { ep.Crash() })
}

// NodeCount returns the peer count.
func (c *Cluster) NodeCount() int { return len(c.d.Grids) }

// NodeAddr returns the overlay address of node i.
func (c *Cluster) NodeAddr(i int) string { return string(c.d.Grids[i].Addr()) }

// Report summarizes a completed run.
type Report struct {
	Submitted   int
	Delivered   int
	Wait        metrics.Summary // seconds
	Turnaround  metrics.Summary // seconds
	MatchCost   metrics.Summary // overlay messages per match
	Messages    int64
	Recoveries  int // run-node failures recovered by the owner
	Adoptions   int // owner failures recovered by run nodes
	Resubmits   int // double failures recovered by clients
	SimDuration time.Duration
	PerNodeJobs []int // jobs completed per node
}

// Run executes all submitted jobs, simulating until every result is
// delivered or the deadline passes, and returns the report. Run may be
// called once.
func (c *Cluster) Run(deadline time.Duration) Report {
	if c.ran {
		panic("p2pgrid: Run called twice")
	}
	c.ran = true
	// Submit from a client proc on node 0 at the scheduled instants.
	client := c.d.Grids[0]
	if c.cfg.Maintenance {
		client.StartClientMonitor(30 * time.Second)
	}
	subs := c.subs
	c.d.Hosts[0].Go("facade.client", func(rt transport.Runtime) {
		for _, s := range subs {
			if wait := s.at - rt.Now(); wait > 0 {
				rt.Sleep(wait)
			}
			_, _ = client.Submit(rt, grid.JobSpec{
				Cons:    s.job.cons(),
				Work:    s.job.Runtime,
				InputKB: s.job.InputKB,
			})
		}
	})
	for {
		c.d.Engine.RunFor(5 * time.Second)
		if c.d.Collector.Count(grid.EvResultDelivered) >= len(subs) {
			break
		}
		if time.Duration(c.d.Engine.Now()) >= deadline {
			break
		}
	}
	col := c.d.Collector
	rep := Report{
		Submitted:   len(subs),
		Delivered:   col.Count(grid.EvResultDelivered),
		Wait:        metrics.Summarize(col.WaitTimes()),
		Turnaround:  metrics.Summarize(col.Turnarounds()),
		MatchCost:   metrics.Summarize(col.MatchCosts()),
		Messages:    c.d.Net.Stats.Messages,
		Recoveries:  col.Count(grid.EvRunFailureDetected),
		Adoptions:   col.Count(grid.EvOwnerAdopted),
		Resubmits:   col.Count(grid.EvResubmitted),
		SimDuration: time.Duration(c.d.Engine.Now()),
	}
	for _, g := range c.d.Grids {
		rep.PerNodeJobs = append(rep.PerNodeJobs, int(g.Completed))
	}
	c.d.Engine.Shutdown()
	return rep
}

// Sim exposes the underlying engine clock (diagnostics).
func (c *Cluster) Sim() *sim.Engine { return c.d.Engine }
