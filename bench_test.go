package p2pgrid

// Benchmark harness: one benchmark per paper figure/table (see
// DESIGN.md's per-experiment index). Each iteration runs the full
// experiment at a reduced scale and reports the headline numbers as
// custom metrics, so `go test -bench=.` regenerates every result the
// paper reports. Full paper scale: cmd/gridsim -scale 1.

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/can"
	"repro/internal/chord"
	"repro/internal/experiments"
	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/simhost"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/workload"
)

// benchScale keeps one iteration around a second or two; the shapes
// (who wins, by what factor) match the full-scale runs.
const benchScale = 0.04

func benchOpts(seed int64) experiments.Options {
	return experiments.Options{Scale: benchScale, Seed: seed}
}

// reportFig2 attaches each (level, algorithm) pair's wait statistics.
func reportFig2(b *testing.B, rows []experiments.Fig2Row, std bool) {
	for _, r := range rows {
		name := fmt.Sprintf("%s/%s", r.Level, r.Alg)
		if std {
			b.ReportMetric(r.WaitStd, name+"-stdev-s")
		} else {
			b.ReportMetric(r.WaitMean, name+"-avg-s")
		}
	}
}

// BenchmarkFig2a regenerates Figure 2(a): average job wait time,
// clustered workloads.
func BenchmarkFig2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig2(workload.Clustered, benchOpts(int64(i+1)))
		if i == b.N-1 {
			reportFig2(b, rows, false)
		}
	}
}

// BenchmarkFig2b regenerates Figure 2(b): stdev of job wait time,
// clustered workloads.
func BenchmarkFig2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig2(workload.Clustered, benchOpts(int64(i+1)))
		if i == b.N-1 {
			reportFig2(b, rows, true)
		}
	}
}

// BenchmarkFig2c regenerates Figure 2(c): average job wait time, mixed
// workloads — the panel with the basic-CAN load-imbalance pathology.
func BenchmarkFig2c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig2(workload.Mixed, benchOpts(int64(i+1)))
		if i == b.N-1 {
			reportFig2(b, rows, false)
		}
	}
}

// BenchmarkFig2d regenerates Figure 2(d): stdev of job wait time, mixed
// workloads.
func BenchmarkFig2d(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig2(workload.Mixed, benchOpts(int64(i+1)))
		if i == b.N-1 {
			reportFig2(b, rows, true)
		}
	}
}

// BenchmarkMatchCost regenerates Table 1: matchmaking cost ("small
// number of hops") per workload quadrant.
func BenchmarkMatchCost(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.MatchCost(benchOpts(int64(i + 1)))
	}
	for _, row := range tbl.Rows {
		if v, err := strconv.ParseFloat(row[3], 64); err == nil {
			b.ReportMetric(v, row[0]+"/"+row[1]+"/"+row[2]+"-msgs")
		}
	}
}

// BenchmarkCANPush regenerates Table 2: basic CAN vs load-pushing CAN
// vs the centralized baseline on the pathological quadrant.
func BenchmarkCANPush(b *testing.B) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		tbl = experiments.CANPush(benchOpts(int64(i + 1)))
	}
	for _, row := range tbl.Rows {
		if v, err := strconv.ParseFloat(row[1], 64); err == nil {
			b.ReportMetric(v, row[0]+"-avg-wait-s")
		}
		if v, err := strconv.ParseFloat(row[2], 64); err == nil {
			b.ReportMetric(v, row[0]+"-stdev-wait-s")
		}
	}
}

// BenchmarkDHTBehavior regenerates Table 3: lookup hops and maintenance
// traffic vs network size.
func BenchmarkDHTBehavior(b *testing.B) {
	var rows []experiments.DHTRow
	for i := 0; i < b.N; i++ {
		rows, _ = experiments.DHTBehavior([]int{64, 256}, experiments.Options{Seed: int64(i + 1)})
	}
	for _, r := range rows {
		b.ReportMetric(r.ChordHops, fmt.Sprintf("chord-hops-n%d", r.N))
		b.ReportMetric(r.CANHops, fmt.Sprintf("can-hops-n%d", r.N))
	}
}

// BenchmarkRobustness regenerates Table 4: job survival under churn.
func BenchmarkRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Robustness([]float64{0.15}, benchOpts(int64(i+1)))
	}
}

// BenchmarkTTLFailure regenerates Table 5: TTL search misses rare
// resources that structured matchmaking finds.
func BenchmarkTTLFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.TTLFailure(experiments.Options{Scale: 0.1, Seed: int64(i + 1)})
	}
}

// BenchmarkAblateVirtualDim regenerates the virtual-dimension ablation.
func BenchmarkAblateVirtualDim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.VirtualDimAblation(benchOpts(int64(i + 1)))
	}
}

// BenchmarkAblateExtendedSearch regenerates the extended-search-k
// ablation.
func BenchmarkAblateExtendedSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.ExtendedSearchAblation(benchOpts(int64(i + 1)))
	}
}

// --- micro-benchmarks of the substrates ---

// BenchmarkChordLookup measures simulated Chord lookups on a converged
// 256-node ring (wall time per simulated lookup).
func BenchmarkChordLookup(b *testing.B) {
	e := sim.NewEngine(1)
	net := simnet.New(e)
	const N = 256
	nodes := make([]*chord.Node, N)
	hosts := make([]*simhost.Host, N)
	for i := 0; i < N; i++ {
		hosts[i] = simhost.New(net.NewEndpoint(simnet.Addr(fmt.Sprintf("n%04d", i))))
		nodes[i] = chord.New(hosts[i], chord.Config{})
	}
	chord.WarmStart(nodes)
	b.ResetTimer()
	done := false
	hosts[0].Go("bench", func(rt transport.Runtime) {
		for i := 0; i < b.N; i++ {
			src := nodes[i%N]
			if _, _, err := src.Lookup(rt, ids.HashString(fmt.Sprint(i))); err != nil {
				b.Errorf("lookup: %v", err)
				return
			}
		}
		done = true
	})
	for !done {
		e.RunFor(time.Hour)
	}
	b.StopTimer()
	e.Shutdown()
}

// BenchmarkCANRoute measures simulated CAN greedy routing on a
// converged 256-node space.
func BenchmarkCANRoute(b *testing.B) {
	e := sim.NewEngine(1)
	net := simnet.New(e)
	const N = 256
	nodes := make([]*can.Node, N)
	hosts := make([]*simhost.Host, N)
	for i := 0; i < N; i++ {
		hosts[i] = simhost.New(net.NewEndpoint(simnet.Addr(fmt.Sprintf("n%04d", i))))
		nodes[i] = can.New(hosts[i], Node{
			CPU: float64(1 + i%10), MemoryMB: float64(256 * (1 + i%8)), DiskGB: float64(10 * (1 + i%16)),
		}.caps(), "linux", can.Config{})
	}
	can.WarmStart(nodes, 0)
	b.ResetTimer()
	done := false
	hosts[0].Go("bench", func(rt transport.Runtime) {
		rng := rt.Rand()
		for i := 0; i < b.N; i++ {
			var target can.Point
			for d := range target {
				target[d] = rng.Float64()
			}
			if _, _, err := nodes[i%N].Route(rt, target); err != nil {
				b.Errorf("route: %v", err)
				return
			}
		}
		done = true
	})
	for !done {
		e.RunFor(time.Hour)
	}
	b.StopTimer()
	e.Shutdown()
}

// BenchmarkSimEngine measures raw event throughput of the DES kernel.
func BenchmarkSimEngine(b *testing.B) {
	e := sim.NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(time.Millisecond, tick)
		}
	}
	e.Schedule(time.Millisecond, tick)
	b.ResetTimer()
	e.Run()
}

// BenchmarkSimProcSwitch measures coroutine context-switch cost.
func BenchmarkSimProcSwitch(b *testing.B) {
	e := sim.NewEngine(1)
	e.Spawn("switcher", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.Run()
}
