// Command gridsim runs the paper-reproduction experiments (see
// DESIGN.md's per-experiment index and EXPERIMENTS.md for results).
//
// Usage:
//
//	gridsim -exp fig2a            # one experiment at default scale
//	gridsim -exp all -scale 1     # full paper scale (1000 nodes, slow)
//	gridsim -exp simbench         # kernel throughput ladder -> JSON
//	gridsim -list                 # list experiment identifiers
//
// Experiments: fig2a fig2b (clustered avg/stdev), fig2c fig2d (mixed),
// tab1 (matchmaking cost), tab2 (CAN pushing), tab3 (DHT behaviour),
// tab4 (robustness/churn), tab5 (TTL misses), faultsweep (seeded
// fault injection), ckptsweep (checkpoint/resume policies),
// trustsweep (sabotage tolerance: replication/quorum/reputation),
// replsweep (owner-state replication degree under owner+run double
// crashes), notifsweep (pub/sub push notifications vs status polling),
// flowsweep (DAG checkpoint policies: workflow-aware vs adaptive),
// simbench (kernel throughput ladder, writes BENCH_sim.json),
// ablate-virtualdim, ablate-k, ablate-fair, all.
//
// Observability (DESIGN.md §14): -simstats prints the simulation
// kernel's event/switch/wall-clock report after every run,
// -switch-trace dumps the context-switch interleaving to a file, and
// -profile cpu,heap captures pprof profiles around the whole run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

var experimentOrder = []string{
	"fig2a", "fig2b", "fig2c", "fig2d",
	"tab1", "tab2", "tab3", "tab4", "tab5",
	"faultsweep", "ckptsweep", "trustsweep", "replsweep", "notifsweep",
	"flowsweep",
	"ablate-virtualdim", "ablate-k", "ablate-fair",
}

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	scale := flag.Float64("scale", 0.1, "workload scale: 1 = paper's 1000 nodes / 5000 jobs")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "progress output")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	list := flag.Bool("list", false, "list experiment identifiers")

	simstats := flag.Bool("simstats", false, "print the sim kernel's stats report after every run")
	switchTrace := flag.String("switch-trace", "", "write the kernel's context-switch trace to this file")
	profile := flag.String("profile", "", "comma-separated pprof profiles to capture: cpu,heap")
	profileDir := flag.String("profile-dir", ".", "directory for pprof output files")

	benchOut := flag.String("bench-out", "", "simbench: write the JSON result here (default stdout only)")
	runfile := flag.String("runfile", "", "simbench: declarative ladder runfile (keys: scales, grow, budget, alg, maintenance)")
	flag.Parse()

	if *list {
		for _, id := range experimentOrder {
			fmt.Println(id)
		}
		fmt.Println("simbench")
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "gridsim: -exp required (try -list)")
		os.Exit(2)
	}

	o := experiments.Options{Scale: *scale, Seed: *seed}
	if *verbose {
		o.Verbose = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}

	// Kernel observability: stats report sink and switch-trace file.
	ins := &experiments.Instrument{}
	if *simstats {
		ins.Stats = true
		ins.OnStats = func(label string, st *sim.Stats) {
			fmt.Fprintf(os.Stderr, "# simstats [%s]\n%s", label, indent(st.Report(), "# "))
		}
	}
	if *switchTrace != "" {
		f, err := os.Create(*switchTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: -switch-trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		ins.Trace = func(format string, args ...any) {
			fmt.Fprintf(f, format+"\n", args...)
		}
	}
	if ins.Stats || ins.Trace != nil {
		o.Instrument = ins
	}

	// pprof capture brackets the whole run (all requested experiments),
	// so one profile answers "where does the suite burn its time".
	stopProfiles, err := startProfiles(*profile, *profileDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
		os.Exit(1)
	}
	defer stopProfiles()

	if *exp == "simbench" {
		if err := runSimBench(o, *runfile, *benchOut, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			stopProfiles()
			os.Exit(1)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experimentOrder
	}
	start := time.Now()
	for _, id := range ids {
		tbl, err := run(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			stopProfiles()
			os.Exit(1)
		}
		if *csv {
			fmt.Print(tbl.CSV())
		} else {
			fmt.Println(tbl.Format())
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "# total wall time %v\n", time.Since(start).Round(time.Millisecond))
	}
}

// runSimBench drives the kernel throughput ladder and writes the
// BENCH_sim.json payload.
func runSimBench(o experiments.Options, runfile, out string, csv bool) error {
	cfg := experiments.DefaultSimBench()
	if runfile != "" {
		data, err := os.ReadFile(runfile)
		if err != nil {
			return err
		}
		if cfg, err = experiments.ParseRunfile(string(data)); err != nil {
			return err
		}
	}
	res, tbl := experiments.SimBench(cfg, o)
	if csv {
		fmt.Print(tbl.CSV())
	} else {
		fmt.Println(tbl.Format())
	}
	if out != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# wrote %s (%d rungs)\n", out, len(res.Rungs))
	}
	return nil
}

// startProfiles arms the requested pprof captures; the returned stop
// function is idempotent and safe on the error paths.
func startProfiles(kinds, dir string) (func(), error) {
	if kinds == "" {
		return func() {}, nil
	}
	var cpu *os.File
	heapPath := ""
	for _, kind := range strings.Split(kinds, ",") {
		switch strings.TrimSpace(kind) {
		case "cpu":
			f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
			if err != nil {
				return func() {}, err
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return func() {}, err
			}
			cpu = f
		case "heap":
			heapPath = filepath.Join(dir, "heap.pprof")
		case "":
		default:
			return func() {}, fmt.Errorf("-profile: unknown kind %q (want cpu,heap)", kind)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
			fmt.Fprintf(os.Stderr, "# wrote %s\n", cpu.Name())
		}
		if heapPath != "" {
			f, err := os.Create(heapPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gridsim: heap profile: %v\n", err)
				return
			}
			runtime.GC() // up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "gridsim: heap profile: %v\n", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "# wrote %s\n", heapPath)
		}
	}, nil
}

// indent prefixes every non-empty line of s.
func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// run dispatches one experiment id to its driver. The fig2 panels share
// a driver per population: panels (a,b) are the avg/stdev columns of
// the clustered table, (c,d) of the mixed table.
func run(id string, o experiments.Options) (*experiments.Table, error) {
	switch id {
	case "fig2a", "fig2b":
		_, tbl := experiments.Fig2(workload.Clustered, o)
		tbl.Notes = append(tbl.Notes, "panel (a) is the avg-wait column; panel (b) is the stdev-wait column")
		return tbl, nil
	case "fig2c", "fig2d":
		_, tbl := experiments.Fig2(workload.Mixed, o)
		tbl.Notes = append(tbl.Notes, "panel (c) is the avg-wait column; panel (d) is the stdev-wait column")
		return tbl, nil
	case "tab1":
		return experiments.MatchCost(o), nil
	case "tab2":
		return experiments.CANPush(o), nil
	case "tab3":
		sizes := []int{64, 256, 1024}
		if o.Scale >= 1 {
			sizes = append(sizes, 4096)
		}
		_, tbl := experiments.DHTBehavior(sizes, o)
		return tbl, nil
	case "tab4":
		return experiments.Robustness(nil, o), nil
	case "tab5":
		return experiments.TTLFailure(o), nil
	case "faultsweep":
		return experiments.FaultSweep(o), nil
	case "ckptsweep":
		return experiments.CkptSweep(o), nil
	case "trustsweep":
		return experiments.TrustSweep(o), nil
	case "replsweep":
		return experiments.ReplSweep(o), nil
	case "notifsweep":
		return experiments.NotifSweep(o), nil
	case "flowsweep":
		return experiments.FlowSweep(o), nil
	case "ablate-virtualdim":
		return experiments.VirtualDimAblation(o), nil
	case "ablate-k":
		return experiments.ExtendedSearchAblation(o), nil
	case "ablate-fair":
		return experiments.FairnessAblation(o), nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
}
