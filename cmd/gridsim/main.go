// Command gridsim runs the paper-reproduction experiments (see
// DESIGN.md's per-experiment index and EXPERIMENTS.md for results).
//
// Usage:
//
//	gridsim -exp fig2a            # one experiment at default scale
//	gridsim -exp all -scale 1     # full paper scale (1000 nodes, slow)
//	gridsim -list                 # list experiment identifiers
//
// Experiments: fig2a fig2b (clustered avg/stdev), fig2c fig2d (mixed),
// tab1 (matchmaking cost), tab2 (CAN pushing), tab3 (DHT behaviour),
// tab4 (robustness/churn), tab5 (TTL misses), faultsweep (seeded
// fault injection), ckptsweep (checkpoint/resume policies),
// trustsweep (sabotage tolerance: replication/quorum/reputation),
// replsweep (owner-state replication degree under owner+run double
// crashes), notifsweep (pub/sub push notifications vs status polling),
// ablate-virtualdim, ablate-k, ablate-fair, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

var experimentOrder = []string{
	"fig2a", "fig2b", "fig2c", "fig2d",
	"tab1", "tab2", "tab3", "tab4", "tab5",
	"faultsweep", "ckptsweep", "trustsweep", "replsweep", "notifsweep",
	"ablate-virtualdim", "ablate-k", "ablate-fair",
}

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	scale := flag.Float64("scale", 0.1, "workload scale: 1 = paper's 1000 nodes / 5000 jobs")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "progress output")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	list := flag.Bool("list", false, "list experiment identifiers")
	flag.Parse()

	if *list {
		for _, id := range experimentOrder {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "gridsim: -exp required (try -list)")
		os.Exit(2)
	}

	o := experiments.Options{Scale: *scale, Seed: *seed}
	if *verbose {
		o.Verbose = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experimentOrder
	}
	start := time.Now()
	for _, id := range ids {
		tbl, err := run(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(tbl.CSV())
		} else {
			fmt.Println(tbl.Format())
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "# total wall time %v\n", time.Since(start).Round(time.Millisecond))
	}
}

// run dispatches one experiment id to its driver. The fig2 panels share
// a driver per population: panels (a,b) are the avg/stdev columns of
// the clustered table, (c,d) of the mixed table.
func run(id string, o experiments.Options) (*experiments.Table, error) {
	switch id {
	case "fig2a", "fig2b":
		_, tbl := experiments.Fig2(workload.Clustered, o)
		tbl.Notes = append(tbl.Notes, "panel (a) is the avg-wait column; panel (b) is the stdev-wait column")
		return tbl, nil
	case "fig2c", "fig2d":
		_, tbl := experiments.Fig2(workload.Mixed, o)
		tbl.Notes = append(tbl.Notes, "panel (c) is the avg-wait column; panel (d) is the stdev-wait column")
		return tbl, nil
	case "tab1":
		return experiments.MatchCost(o), nil
	case "tab2":
		return experiments.CANPush(o), nil
	case "tab3":
		sizes := []int{64, 256, 1024}
		if o.Scale >= 1 {
			sizes = append(sizes, 4096)
		}
		_, tbl := experiments.DHTBehavior(sizes, o)
		return tbl, nil
	case "tab4":
		return experiments.Robustness(nil, o), nil
	case "tab5":
		return experiments.TTLFailure(o), nil
	case "faultsweep":
		return experiments.FaultSweep(o), nil
	case "ckptsweep":
		return experiments.CkptSweep(o), nil
	case "trustsweep":
		return experiments.TrustSweep(o), nil
	case "replsweep":
		return experiments.ReplSweep(o), nil
	case "notifsweep":
		return experiments.NotifSweep(o), nil
	case "ablate-virtualdim":
		return experiments.VirtualDimAblation(o), nil
	case "ablate-k":
		return experiments.ExtendedSearchAblation(o), nil
	case "ablate-fair":
		return experiments.FairnessAblation(o), nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
}
