// Command gridnode runs one live desktop-grid peer over TCP: it joins
// (or creates) the overlay, advertises its resources, and runs jobs
// submitted by any client (see cmd/gridctl). Jobs execute in a sandbox
// as synthetic CPU work sized by the job profile.
//
// Start a first node, then join more:
//
//	gridnode -listen 127.0.0.1:7001
//	gridnode -listen 127.0.0.1:7002 -bootstrap 127.0.0.1:7001 -cpu 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chord"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/match"
	"repro/internal/nettransport"
	"repro/internal/obs"
	"repro/internal/pubsub"
	"repro/internal/resource"
	"repro/internal/rntree"
	"repro/internal/sandbox"
	"repro/internal/transport"
	"repro/internal/trust"
	"repro/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7001", "TCP listen address")
	bootstrap := flag.String("bootstrap", "", "address of an existing node ('' = create a new grid)")
	cpu := flag.Float64("cpu", 5, "advertised CPU speed (1-10)")
	mem := flag.Float64("mem", 4096, "advertised memory (MB)")
	disk := flag.Float64("disk", 100, "advertised disk (GB)")
	osname := flag.String("os", "linux", "advertised operating system")
	replicas := flag.Int("replicas", 1, "redundant executions per owned job (1 = no voting)")
	quorum := flag.Int("quorum", 1, "matching result digests required to accept")
	probeEvery := flag.Duration("probe-every", 0, "known-answer probe interval for blacklisted peers (0 = off)")
	notify := flag.Bool("notify", false, "publish job-state transitions over the DHT pub/sub overlay (clients subscribe at submit; see 'gridctl watch')")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address for /metrics, /events, /debug/pprof ('' = off)")
	transportMode := flag.String("transport", "pooled", "outbound call path: pooled (persistent framed conns) or perdial (one conn per call; benchmarking baseline)")
	ownerCap := flag.Int("owner-cap", 0, "bound on jobs this node will own at once; beyond it injections are rejected with a retry-after hint (0 = unbounded)")
	chaosSpec := flag.String("chaos", "", "deterministic outbound fault schedule, e.g. 'method=grid.assign reset=0.1; stall=0.2:300ms' (DESIGN.md §12; '' = off)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the -chaos schedule; same seed, same rules => same fault sequence")
	chaosLog := flag.String("chaos-log", "", "append one 'peer method seq fate' line per chaos decision to this file ('' = off)")
	flag.Parse()

	var topts nettransport.Opts
	switch *transportMode {
	case "pooled":
	case "perdial":
		topts.PerDial = true
	default:
		fmt.Fprintf(os.Stderr, "gridnode: unknown -transport %q (pooled|perdial)\n", *transportMode)
		os.Exit(2)
	}
	if *chaosSpec != "" {
		rules, err := nettransport.ParseRules(*chaosSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridnode: -chaos: %v\n", err)
			os.Exit(2)
		}
		cz := nettransport.NewChaos(*chaosSeed, rules...)
		if *chaosLog != "" {
			f, err := os.OpenFile(*chaosLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gridnode: -chaos-log: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			cz.SetLog(f)
		}
		topts.Chaos = cz
		fmt.Printf("gridnode: chaos on (seed %d, %d rules)\n", *chaosSeed, len(rules))
	}

	wire.RegisterAll()
	host, err := nettransport.ListenOpts(*listen, topts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridnode: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()
	caps := resource.Vector{*cpu, *mem, *disk}

	// One obs sink spans every layer of this process; nil disables all
	// instrumentation (every instrument is nil-safe).
	var o *obs.Obs
	if *metricsAddr != "" {
		o = obs.New()
		host.SetObs(o)
		srv, bound, err := obs.Serve(*metricsAddr, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridnode: metrics: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("gridnode: metrics at http://%s/metrics (events at /events, profiles at /debug/pprof)\n", bound)
	}

	ch := chord.New(host, chord.Config{
		StabilizeEvery:  500 * time.Millisecond,
		FixFingersEvery: 500 * time.Millisecond,
		Obs:             o,
	})
	rn := rntree.New(host, ch, caps, *osname, rntree.Config{AggregateEvery: time.Second, Obs: o})
	overlay := &match.ChordOverlay{Chord: ch, Walk: rn}
	var matcher grid.Matchmaker = &match.RNTree{RN: rn}
	// Voting implies reputation: the owner scores replicas against each
	// accepted digest, and matchmaking avoids blacklisted peers. The
	// table is answerable over grid.trust (gridctl trust).
	var tb *trust.Table
	if *replicas > 1 || *quorum > 1 {
		tb = trust.New(trust.Config{})
		matcher = &match.Trusted{Inner: matcher, Table: tb}
	}
	logger := grid.RecorderFunc(func(ev grid.Event) {
		fmt.Printf("%s job=%s attempt=%d node=%s\n", ev.Kind, ev.JobID.Short(), ev.Attempt, ev.Node)
	})
	// Jobs run inside a sandbox (Section 5 of the paper): private
	// filesystem root, no network, output quota, bounded runtime. The
	// work itself is synthetic (the profile's nominal duration) with the
	// job's input/output sizes materialized as files.
	box := sandbox.New(sandbox.Policy{
		MaxOutputBytes: 64 << 20,
		MaxRuntime:     time.Hour,
	})
	executor := func(prof grid.Profile) (int, error) {
		out, err := box.Run(context.Background(), func(ctx context.Context, env *sandbox.Env) ([]byte, error) {
			if err := env.WriteFile("input.dat", make([]byte, prof.InputKB*1024)); err != nil {
				return nil, err
			}
			select {
			case <-time.After(prof.Work):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			output := make([]byte, (prof.OutputKB+1)*1024)
			if err := env.WriteFile("output.dat", output); err != nil {
				return nil, err
			}
			return output, nil
		})
		if err != nil {
			return 0, err
		}
		return len(out) / 1024, nil
	}
	// The notification broker rides the same Chord ring: topics hash to
	// a rendezvous node found by ordinary lookups, so every peer runs a
	// broker and owners publish to whichever rendezvous a job's topic
	// maps to (DESIGN.md §13).
	var broker *pubsub.Broker
	if *notify {
		broker = pubsub.New(host, pubsub.Config{
			Lookup: func(rt transport.Runtime, key ids.ID) (transport.Addr, error) {
				ref, _, err := ch.Lookup(rt, key)
				if err != nil {
					return "", err
				}
				return ref.Addr, nil
			},
			Obs: o,
		})
	}
	gn := grid.NewNode(host, caps, *osname, overlay, matcher, logger, grid.Config{
		HeartbeatEvery: time.Second,
		Executor:       executor,
		Replicas:       *replicas,
		Quorum:         *quorum,
		Trust:          tb,
		ProbeEvery:     *probeEvery,
		OwnerCapacity:  *ownerCap,
		Obs:            o,
		// Transport health feeds graceful degradation (breaker-open
		// peers demoted in matchmaking and probing) and grid.health.
		PeerDown: host.PeerDown,
		Health:   gridHealth(host),
		Notify:   broker,
	})
	rn.SetLoadFn(gn.QueueLen)
	if broker != nil {
		broker.SetOnEvent(gn.OnNotification)
		ch.SetRingChange(broker.RingChange)
	}

	if *bootstrap == "" {
		ch.Create()
		fmt.Printf("gridnode: created grid at %s (id %s)\n", host.Addr(), ch.ID().Short())
	} else {
		joined := make(chan error, 1)
		host.Go("join", func(rt transport.Runtime) {
			var jerr error
			for try := 0; try < 20; try++ {
				if jerr = ch.Join(rt, transport.Addr(*bootstrap)); jerr == nil {
					break
				}
				rt.Sleep(500 * time.Millisecond)
			}
			joined <- jerr
		})
		if err := <-joined; err != nil {
			fmt.Fprintf(os.Stderr, "gridnode: join: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("gridnode: joined via %s as %s (id %s)\n", *bootstrap, host.Addr(), ch.ID().Short())
	}
	ch.Start()
	rn.Start()
	gn.Start()
	if broker != nil {
		broker.Start()
		fmt.Println("gridnode: pub/sub notifications on (topics rendezvous on the ring)")
	}

	fmt.Printf("gridnode: caps=%s os=%s; ctrl-c to stop\n", caps, *osname)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("gridnode: shutting down")
}

// gridHealth adapts the transport's breaker snapshot to the grid's
// transport-agnostic health type for the grid.health RPC.
func gridHealth(host *nettransport.Host) func() []grid.PeerHealth {
	return func() []grid.PeerHealth {
		hs := host.Health()
		out := make([]grid.PeerHealth, len(hs))
		for i, e := range hs {
			out[i] = grid.PeerHealth{
				Peer:        e.Peer,
				State:       e.State,
				ConsecFails: e.ConsecFails,
				Failures:    e.Failures,
				Successes:   e.Successes,
				Opens:       e.Opens,
				RetryIn:     e.RetryIn,
			}
		}
		return out
	}
}
