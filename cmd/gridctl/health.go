package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/grid"
	"repro/internal/nettransport"
	"repro/internal/transport"
	"repro/internal/wire"
)

// healthCmd asks one node for its per-peer circuit-breaker table
// (grid.health) and prints it.
//
//	gridctl health -node 127.0.0.1:7001
func healthCmd(args []string) {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	node := fs.String("node", "127.0.0.1:7001", "grid node to ask")
	_ = fs.Parse(args)

	wire.RegisterAll()
	host, err := nettransport.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()

	done := make(chan error, 1)
	host.Go("health", func(rt transport.Runtime) {
		raw, err := rt.CallT(transport.Addr(*node), grid.MHealth, grid.HealthReq{}, 5*time.Second)
		if err != nil {
			done <- err
			return
		}
		resp := raw.(grid.HealthResp)
		fmt.Printf("node %s: %d peers with breaker state\n", resp.Node, len(resp.Peers))
		if len(resp.Peers) > 0 {
			fmt.Printf("%-22s %-10s %6s %6s %6s %6s  %s\n",
				"PEER", "STATE", "CONSEC", "FAILS", "OKS", "OPENS", "RETRY-IN")
			for _, p := range resp.Peers {
				retry := "-"
				if p.RetryIn > 0 {
					retry = p.RetryIn.Round(time.Millisecond).String()
				}
				fmt.Printf("%-22s %-10s %6d %6d %6d %6d  %s\n",
					p.Peer, p.State, p.ConsecFails, p.Failures, p.Successes, p.Opens, retry)
			}
		}
		done <- nil
	})
	if err := <-done; err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: health: %v\n", err)
		os.Exit(1)
	}
}
