package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/nettransport"
	"repro/internal/pubsub"
	"repro/internal/transport"
	"repro/internal/wire"
)

// watchCmd follows one job lineage's push notifications: it resolves
// the lineage topic's rendezvous through any grid node (pubsub.resolve
// works from outside the overlay), subscribes its own ephemeral
// address, and prints every job-state transition the owners publish —
// no status polling anywhere. The job id is the GUID `gridctl` prints
// at submission (the attempt-0 GUID, stable across resubmissions, so
// one watch spans every attempt). The default exit transition is
// "completed" — the final owner-published step; result delivery itself
// happens run-node-to-client and is never pushed.
//
// The subscription is re-asserted periodically through a fresh
// resolve, so a rendezvous death mid-watch re-aims at the successor
// that took the topic over (DESIGN.md §13).
func watchCmd(args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	node := fs.String("node", "127.0.0.1:7001", "any grid node (resolves the topic's rendezvous)")
	until := fs.String("until", "completed", "transition kind that ends the watch ('' = until -timeout)")
	timeout := fs.Duration("timeout", 5*time.Minute, "give up after this long")
	resub := fs.Duration("resubscribe-every", 2*time.Second, "subscription re-assertion period")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gridctl watch [-node addr] [-until kind] <job-id>")
		os.Exit(2)
	}
	topic, err := ids.Parse(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: watch: bad job id: %v\n", err)
		os.Exit(2)
	}

	wire.RegisterAll()
	host, err := nettransport.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()

	// Receiver-side exactly-once: the same (epoch, seq) dedup the
	// broker's subscriber side runs, with the cumulative ack advancing
	// over the contiguous prefix so the rendezvous stops redelivering.
	type dedup struct {
		upTo int
		seen map[int]bool
	}
	var (
		mu       sync.Mutex
		epochs   = map[int]*dedup{}
		received int
		done     = make(chan struct{})
		once     sync.Once
	)
	host.Handle(pubsub.MNotify, func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		r := req.(pubsub.NotifyReq)
		if r.Topic != topic {
			return pubsub.NotifyResp{}, nil
		}
		mu.Lock()
		d := epochs[r.Epoch]
		if d == nil {
			d = &dedup{seen: make(map[int]bool)}
			epochs[r.Epoch] = d
		}
		var fresh []pubsub.Event
		for _, ev := range r.Events {
			if ev.Seq <= d.upTo || d.seen[ev.Seq] {
				continue
			}
			d.seen[ev.Seq] = true
			fresh = append(fresh, ev)
		}
		for d.seen[d.upTo+1] {
			delete(d.seen, d.upTo+1)
			d.upTo++
		}
		ack := d.upTo
		received += len(fresh)
		mu.Unlock()
		sort.Slice(fresh, func(i, j int) bool { return fresh[i].Seq < fresh[j].Seq })
		for _, ev := range fresh {
			u, err := grid.DecodeJobUpdate(ev.Payload)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gridctl: watch: bad payload: %v\n", err)
				continue
			}
			line := fmt.Sprintf("%10v  %-22s attempt=%d node=%s from=%s",
				u.At.Round(time.Millisecond), u.Kind, u.Attempt, u.Node, u.From)
			if u.Progress > 0 {
				line += fmt.Sprintf(" progress=%v", u.Progress.Round(time.Millisecond))
			}
			fmt.Println(line)
			if *until != "" && u.Kind == *until {
				once.Do(func() { close(done) })
			}
		}
		return pubsub.NotifyResp{AckUpTo: ack}, nil
	})

	// Subscription keep-alive: resolve then subscribe, repeatedly. The
	// rendezvous treats a duplicate subscribe as a no-op, so the steady
	// state costs two tiny RPCs per period while guaranteeing a
	// takeover or a dropped SubscribeReq heals within one period.
	var rdvMu sync.Mutex
	var rdv transport.Addr
	host.Go("watch.subscribe", func(rt transport.Runtime) {
		for {
			raw, err := rt.CallT(transport.Addr(*node), pubsub.MResolve, pubsub.ResolveReq{Topic: topic}, 5*time.Second)
			if err == nil {
				addr := raw.(pubsub.ResolveResp).Addr
				if _, err := rt.CallT(addr, pubsub.MSubscribe, pubsub.SubscribeReq{Topic: topic, Sub: host.Addr()}, 5*time.Second); err == nil {
					rdvMu.Lock()
					if rdv != addr {
						rdv = addr
						fmt.Printf("watching %s (rendezvous %s)\n", topic.Short(), addr)
					}
					rdvMu.Unlock()
				}
			}
			rt.Sleep(*resub)
		}
	})

	exit := 0
	select {
	case <-done:
	case <-time.After(*timeout):
		fmt.Fprintf(os.Stderr, "gridctl: watch: timeout before %q\n", *until)
		exit = 1
	}
	// Best-effort unsubscribe so the rendezvous stops redelivering to
	// an address that is about to disappear.
	rdvMu.Lock()
	addr := rdv
	rdvMu.Unlock()
	if addr != "" {
		bye := make(chan struct{})
		host.Go("watch.unsubscribe", func(rt transport.Runtime) {
			_, _ = rt.CallT(addr, pubsub.MUnsubscribe, pubsub.UnsubscribeReq{Topic: topic, Sub: host.Addr()}, 2*time.Second)
			close(bye)
		})
		select {
		case <-bye:
		case <-time.After(3 * time.Second):
		}
	}
	mu.Lock()
	fmt.Printf("watch done: %d notifications\n", received)
	mu.Unlock()
	os.Exit(exit)
}
