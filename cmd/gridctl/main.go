// Command gridctl submits jobs to a live grid (cmd/gridnode) and waits
// for results. It acts as the paper's external client: it contacts any
// grid node as its injection node and receives the result directly from
// the run node.
//
//	gridctl -node 127.0.0.1:7001 -work 5s -mincpu 2 -n 3
//
// The trust subcommand dumps a node's local reputation table (scores
// are per-owner observations; there is no gossip):
//
//	gridctl trust -node 127.0.0.1:7001
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/nettransport"
	"repro/internal/resource"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trust" {
		trustCmd(os.Args[2:])
		return
	}
	node := flag.String("node", "127.0.0.1:7001", "injection node address")
	work := flag.Duration("work", 5*time.Second, "job runtime")
	n := flag.Int("n", 1, "number of jobs")
	minCPU := flag.Float64("mincpu", 0, "minimum CPU speed (0 = unconstrained)")
	minMem := flag.Float64("minmem", 0, "minimum memory MB")
	minDisk := flag.Float64("mindisk", 0, "minimum disk GB")
	osReq := flag.String("os", "", "required OS ('' = any)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-batch result deadline")
	flag.Parse()

	wire.RegisterAll()
	host, err := nettransport.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()

	cons := resource.Unconstrained
	if *minCPU > 0 {
		cons = cons.Require(resource.CPU, *minCPU)
	}
	if *minMem > 0 {
		cons = cons.Require(resource.Memory, *minMem)
	}
	if *minDisk > 0 {
		cons = cons.Require(resource.Disk, *minDisk)
	}
	if *osReq != "" {
		cons = cons.RequireOS(*osReq)
	}

	var mu sync.Mutex
	results := map[ids.ID]grid.Result{}
	gotAll := make(chan struct{})
	want := *n
	host.Handle(grid.MResult, func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		res := req.(grid.ResultReq).Res
		mu.Lock()
		if _, dup := results[res.JobID]; !dup {
			results[res.JobID] = res
			fmt.Printf("result job=%s run-node=%s elapsed=%v\n",
				res.JobID.Short(), res.RunNode, (res.Finished - res.Started).Round(time.Millisecond))
			if len(results) == want {
				close(gotAll)
			}
		}
		mu.Unlock()
		return grid.ResultResp{}, nil
	})

	submitted := make(chan error, 1)
	host.Go("submit", func(rt transport.Runtime) {
		base := int(time.Now().UnixNano() % 1e9)
		for i := 0; i < want; i++ {
			req := grid.InjectReq{
				Client:  host.Addr(),
				Seq:     base + i,
				Attempt: 0,
				Cons:    cons,
				Work:    *work,
				InputKB: 4,
			}
			raw, err := rt.CallT(transport.Addr(*node), grid.MInject, req, 30*time.Second)
			if err != nil {
				submitted <- fmt.Errorf("inject %d: %w", i, err)
				return
			}
			resp := raw.(grid.InjectResp)
			fmt.Printf("submitted job=%s owner=%s hops=%d\n", resp.JobID.Short(), resp.Owner, resp.Hops)
		}
		submitted <- nil
	})
	if err := <-submitted; err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		os.Exit(1)
	}

	select {
	case <-gotAll:
		fmt.Printf("all %d results received\n", want)
	case <-time.After(*timeout):
		mu.Lock()
		got := len(results)
		mu.Unlock()
		fmt.Fprintf(os.Stderr, "gridctl: timeout with %d/%d results\n", got, want)
		os.Exit(1)
	}
}

// trustCmd asks one node for its reputation table and prints it.
func trustCmd(args []string) {
	fs := flag.NewFlagSet("trust", flag.ExitOnError)
	node := fs.String("node", "127.0.0.1:7001", "node whose reputation table to dump")
	_ = fs.Parse(args)

	wire.RegisterAll()
	host, err := nettransport.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()

	done := make(chan error, 1)
	host.Go("trust", func(rt transport.Runtime) {
		raw, err := rt.CallT(transport.Addr(*node), grid.MTrust, grid.TrustReq{}, 10*time.Second)
		if err != nil {
			done <- err
			return
		}
		entries := raw.(grid.TrustResp).Entries
		if len(entries) == 0 {
			fmt.Printf("node %s tracks no peers (trust disabled or no votes yet)\n", *node)
			done <- nil
			return
		}
		fmt.Printf("%-24s %-7s %-7s %-10s %-9s %-10s %s\n",
			"node", "score", "agreed", "disagreed", "probes-ok", "probes-bad", "blacklisted")
		for _, e := range entries {
			fmt.Printf("%-24s %-7.3f %-7d %-10d %-9d %-10d %v\n",
				e.Node, e.Score, e.Agreed, e.Disagreed, e.ProbesOK, e.ProbesBad, e.Blacklisted)
		}
		done <- nil
	})
	if err := <-done; err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: trust: %v\n", err)
		os.Exit(1)
	}
}
