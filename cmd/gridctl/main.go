// Command gridctl submits jobs to a live grid (cmd/gridnode) and waits
// for results. It acts as the paper's external client: it contacts any
// grid node as its injection node and receives the result directly from
// the run node.
//
//	gridctl -node 127.0.0.1:7001 -work 5s -mincpu 2 -n 3
//
// The trust subcommand dumps a node's local reputation table (scores
// are per-owner observations; there is no gossip):
//
//	gridctl trust -node 127.0.0.1:7001
//
// The stats subcommand dumps a node's live counters and metric
// snapshot; trace reconstructs one job's cross-node lifecycle from the
// per-node trace buffers (DESIGN.md §8):
//
//	gridctl stats -node 127.0.0.1:7001
//	gridctl trace -node 127.0.0.1:7001 <job-id>
//
// The replicas subcommand shows a job's replicated owner state as one
// node sees it — record version/epoch, current owner, and (asked of
// the owner) which successors have acknowledged the latest write
// (DESIGN.md §10):
//
//	gridctl replicas -node 127.0.0.1:7001 <job-id>
//
// The health subcommand prints a node's per-peer circuit-breaker
// table (grid.health, DESIGN.md §12); chaos runs the live chaos soak —
// it joins the grid as a peer, submits jobs under whatever fault
// schedule the nodes were started with, and asserts exactly-once
// completion (scripts/live_chaos.sh drives it):
//
//	gridctl health -node 127.0.0.1:7001
//	gridctl chaos -bootstrap 127.0.0.1:7001 -n 40 -work 300ms -json
//
// The watch subcommand follows one job's push notifications over the
// DHT pub/sub overlay (nodes must run with -notify; DESIGN.md §13) —
// job-state transitions stream in as owners publish them, with no
// status polling:
//
//	gridctl watch -node 127.0.0.1:7001 <job-id>
//
// The flow subcommand runs a declarative workflow file (DESIGN.md §15)
// against the grid: stages submit as their dependencies deliver, each
// stage's input is the bundle of its dependencies' outputs, and the
// exit status asserts every stage delivered exactly once:
//
//	gridctl flow run -bootstrap 127.0.0.1:7001 pipeline.flow
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/nettransport"
	"repro/internal/obs"
	"repro/internal/resource"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "trust":
			trustCmd(os.Args[2:])
			return
		case "stats":
			statsCmd(os.Args[2:])
			return
		case "trace":
			traceCmd(os.Args[2:])
			return
		case "replicas":
			replicasCmd(os.Args[2:])
			return
		case "bench":
			benchCmd(os.Args[2:])
			return
		case "health":
			healthCmd(os.Args[2:])
			return
		case "chaos":
			chaosCmd(os.Args[2:])
			return
		case "watch":
			watchCmd(os.Args[2:])
			return
		case "flow":
			flowCmd(os.Args[2:])
			return
		}
	}
	node := flag.String("node", "127.0.0.1:7001", "injection node address")
	work := flag.Duration("work", 5*time.Second, "job runtime")
	n := flag.Int("n", 1, "number of jobs")
	minCPU := flag.Float64("mincpu", 0, "minimum CPU speed (0 = unconstrained)")
	minMem := flag.Float64("minmem", 0, "minimum memory MB")
	minDisk := flag.Float64("mindisk", 0, "minimum disk GB")
	osReq := flag.String("os", "", "required OS ('' = any)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-batch result deadline")
	flag.Parse()

	wire.RegisterAll()
	host, err := nettransport.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()

	cons := resource.Unconstrained
	if *minCPU > 0 {
		cons = cons.Require(resource.CPU, *minCPU)
	}
	if *minMem > 0 {
		cons = cons.Require(resource.Memory, *minMem)
	}
	if *minDisk > 0 {
		cons = cons.Require(resource.Disk, *minDisk)
	}
	if *osReq != "" {
		cons = cons.RequireOS(*osReq)
	}

	var mu sync.Mutex
	results := map[ids.ID]grid.Result{}
	gotAll := make(chan struct{})
	want := *n
	host.Handle(grid.MResult, func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		res := req.(grid.ResultReq).Res
		mu.Lock()
		if _, dup := results[res.JobID]; !dup {
			results[res.JobID] = res
			fmt.Printf("result job=%s run-node=%s elapsed=%v\n",
				res.JobID.Short(), res.RunNode, (res.Finished - res.Started).Round(time.Millisecond))
			if len(results) == want {
				close(gotAll)
			}
		}
		mu.Unlock()
		return grid.ResultResp{}, nil
	})

	submitted := make(chan error, 1)
	host.Go("submit", func(rt transport.Runtime) {
		base := int(time.Now().UnixNano() % 1e9)
		for i := 0; i < want; i++ {
			req := grid.InjectReq{
				Client:  host.Addr(),
				Seq:     base + i,
				Attempt: 0,
				Cons:    cons,
				Work:    *work,
				InputKB: 4,
			}
			raw, err := rt.CallT(transport.Addr(*node), grid.MInject, req, 30*time.Second)
			if err != nil {
				submitted <- fmt.Errorf("inject %d: %w", i, err)
				return
			}
			resp := raw.(grid.InjectResp)
			// Full GUID: it doubles as the job's trace ID for
			// `gridctl trace`.
			fmt.Printf("submitted job=%s owner=%s hops=%d\n", resp.JobID, resp.Owner, resp.Hops)
		}
		submitted <- nil
	})
	if err := <-submitted; err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		os.Exit(1)
	}

	select {
	case <-gotAll:
		fmt.Printf("all %d results received\n", want)
	case <-time.After(*timeout):
		mu.Lock()
		got := len(results)
		mu.Unlock()
		fmt.Fprintf(os.Stderr, "gridctl: timeout with %d/%d results\n", got, want)
		os.Exit(1)
	}
}

// statsCmd asks one node for its live stats snapshot and prints it.
func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	node := fs.String("node", "127.0.0.1:7001", "node whose stats to dump")
	all := fs.Bool("all", false, "print every metric sample, not just the summary")
	_ = fs.Parse(args)

	wire.RegisterAll()
	host, err := nettransport.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()

	done := make(chan error, 1)
	host.Go("stats", func(rt transport.Runtime) {
		raw, err := rt.CallT(transport.Addr(*node), grid.MStats, grid.StatsReq{}, 10*time.Second)
		if err != nil {
			done <- err
			return
		}
		s := raw.(grid.StatsResp).Stats
		fmt.Printf("node %s (up %v)\n", s.Addr, s.Now.Round(time.Second))
		fmt.Printf("  queue=%d owned=%d pending=%d completed=%d executed=%v\n",
			s.QueueLen, s.Owned, s.Pending, s.Completed, s.Executed.Round(time.Second))
		if *all {
			for _, sm := range s.Samples {
				fmt.Printf("  %-56s %g\n", sm.Name, sm.Value)
			}
		} else {
			for _, sm := range s.Samples {
				if strings.HasSuffix(sm.Name, "_total") || strings.Contains(sm.Name, "_total{") {
					fmt.Printf("  %-56s %g\n", sm.Name, sm.Value)
				}
			}
			fmt.Println("  (use -all for histograms and gauges)")
		}
		done <- nil
	})
	if err := <-done; err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: stats: %v\n", err)
		os.Exit(1)
	}
}

// traceCmd reconstructs one job's cross-node lifecycle: it pulls the
// trace buffer from the starting node, follows every peer named in the
// responses (bounded breadth-first walk), merges the events in causal
// hop order, and prints the result.
func traceCmd(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	node := fs.String("node", "127.0.0.1:7001", "node to start the trace walk at")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gridctl trace [-node addr] <job-id>")
		os.Exit(2)
	}
	trace, err := ids.Parse(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: trace: bad job id: %v\n", err)
		os.Exit(2)
	}

	wire.RegisterAll()
	host, err := nettransport.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()

	done := make(chan error, 1)
	host.Go("trace", func(rt transport.Runtime) {
		const maxNodes = 64
		var evs []obs.TraceEvent
		seen := map[transport.Addr]bool{}
		queue := []transport.Addr{transport.Addr(*node)}
		asked := 0
		for len(queue) > 0 && len(seen) < maxNodes {
			cur := queue[0]
			queue = queue[1:]
			if seen[cur] {
				continue
			}
			seen[cur] = true
			raw, err := rt.CallT(cur, grid.MTrace, grid.TraceReq{Trace: trace}, 10*time.Second)
			if err != nil {
				continue // dead or obs-less node; the rest may still answer
			}
			asked++
			resp := raw.(grid.TraceResp)
			evs = append(evs, resp.Events...)
			queue = append(queue, resp.Peers...)
		}
		if asked == 0 {
			done <- fmt.Errorf("no node answered (is -metrics-addr / obs enabled?)")
			return
		}
		evs = obs.MergeSort(evs)
		if len(evs) == 0 {
			done <- fmt.Errorf("no events for job %s on %d nodes (trace evicted or id unknown)", trace, asked)
			return
		}
		fmt.Printf("trace %s: %d events from %d nodes\n", trace, len(evs), asked)
		fmt.Printf("%-4s %-12s %-22s %-18s a%-3s %-22s %s\n", "hop", "at", "stage", "node", "", "peer", "note")
		for _, ev := range evs {
			fmt.Printf("%-4d %-12v %-22s %-18s a%-3d %-22s %s\n",
				ev.Hop, ev.At.Round(time.Millisecond), ev.Stage, ev.Node, ev.Attempt, ev.Peer, ev.Note)
		}
		done <- nil
	})
	if err := <-done; err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: trace: %v\n", err)
		os.Exit(1)
	}
}

// replicasCmd asks one node for a job's replication status and prints
// it: the record's ordering fields plus, when the asked node is the
// owner, the per-successor acknowledgement state.
func replicasCmd(args []string) {
	fs := flag.NewFlagSet("replicas", flag.ExitOnError)
	node := fs.String("node", "127.0.0.1:7001", "node whose view of the record to dump")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gridctl replicas [-node addr] <job-id>")
		os.Exit(2)
	}
	jobID, err := ids.Parse(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: replicas: bad job id: %v\n", err)
		os.Exit(2)
	}

	wire.RegisterAll()
	host, err := nettransport.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()

	done := make(chan error, 1)
	host.Go("replicas", func(rt transport.Runtime) {
		raw, err := rt.CallT(transport.Addr(*node), grid.MReplicas, grid.ReplicasReq{JobID: jobID}, 10*time.Second)
		if err != nil {
			done <- err
			return
		}
		st := raw.(grid.ReplicasResp).Status
		if !st.Known {
			fmt.Printf("node %s holds no record for job %s (replication off, GC'd, or never replicated here)\n",
				*node, jobID.Short())
			done <- nil
			return
		}
		state := "live"
		if st.Deleted {
			state = "tombstone"
		}
		fmt.Printf("job %s: owner=%s epoch=%d version=%d state=%s\n",
			jobID.Short(), st.Owner, st.Epoch, st.Version, state)
		if len(st.Peers) == 0 {
			fmt.Printf("  (no replica set: ask the owner %s for acknowledgement state)\n", st.Owner)
			done <- nil
			return
		}
		fmt.Printf("  %-24s %-7s %-9s %s\n", "replica", "epoch", "version", "acked")
		for _, p := range st.Peers {
			fmt.Printf("  %-24s %-7d %-9d %v\n", p.Addr, p.Epoch, p.Version, p.Acked)
		}
		done <- nil
	})
	if err := <-done; err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: replicas: %v\n", err)
		os.Exit(1)
	}
}

// trustCmd asks one node for its reputation table and prints it.
func trustCmd(args []string) {
	fs := flag.NewFlagSet("trust", flag.ExitOnError)
	node := fs.String("node", "127.0.0.1:7001", "node whose reputation table to dump")
	_ = fs.Parse(args)

	wire.RegisterAll()
	host, err := nettransport.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()

	done := make(chan error, 1)
	host.Go("trust", func(rt transport.Runtime) {
		raw, err := rt.CallT(transport.Addr(*node), grid.MTrust, grid.TrustReq{}, 10*time.Second)
		if err != nil {
			done <- err
			return
		}
		entries := raw.(grid.TrustResp).Entries
		if len(entries) == 0 {
			fmt.Printf("node %s tracks no peers (trust disabled or no votes yet)\n", *node)
			done <- nil
			return
		}
		fmt.Printf("%-24s %-7s %-7s %-10s %-9s %-10s %s\n",
			"node", "score", "agreed", "disagreed", "probes-ok", "probes-bad", "blacklisted")
		for _, e := range entries {
			fmt.Printf("%-24s %-7.3f %-7d %-10d %-9d %-10d %v\n",
				e.Node, e.Score, e.Agreed, e.Disagreed, e.ProbesOK, e.ProbesBad, e.Blacklisted)
		}
		done <- nil
	})
	if err := <-done; err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: trust: %v\n", err)
		os.Exit(1)
	}
}
