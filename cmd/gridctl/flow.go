package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/chord"
	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/match"
	"repro/internal/nettransport"
	"repro/internal/resource"
	"repro/internal/rntree"
	"repro/internal/transport"
	"repro/internal/wire"
)

// flowResult is the JSON summary one workflow run emits (consumed by
// scripts/live_flow.sh).
type flowResult struct {
	Flow       string  `json:"flow"`
	Stages     int     `json:"stages"`
	Delivered  int     `json:"delivered"`
	Duplicates int     `json:"duplicates"`
	Resubmits  int     `json:"resubmits"`
	ElapsedS   float64 `json:"elapsed_s"`
}

// flowCmd runs a declarative workflow file against a live grid:
//
//	gridctl flow run -bootstrap 127.0.0.1:7001 pipeline.flow
//
// The file names stages and their dependencies (see internal/flow's
// Parse for the format); this harness joins the grid as a real client
// peer and hands the DAG to the same engine the simulator uses —
// ready stages submit in batches, each stage's input is the bundle of
// its dependencies' delivered outputs, and the client monitor recovers
// stages whose lineage dies mid-flight. Exit status asserts the DAG
// contract: every stage delivered exactly once.
func flowCmd(args []string) {
	if len(args) < 1 || args[0] != "run" {
		fmt.Fprintln(os.Stderr, "usage: gridctl flow run [-bootstrap addr] <file>")
		os.Exit(2)
	}
	fs := flag.NewFlagSet("flow run", flag.ExitOnError)
	bootstrap := fs.String("bootstrap", "127.0.0.1:7001", "grid node to join through")
	minCPU := fs.Float64("mincpu", 1, "CPU constraint stamped on every stage (kept above this harness's own caps so it never runs work)")
	patience := fs.Duration("patience", 5*time.Second, "client-monitor silence window before a stage is resubmitted")
	timeout := fs.Duration("timeout", 3*time.Minute, "deadline for the whole workflow")
	jsonOut := fs.Bool("json", false, "emit one JSON result line on stdout")
	_ = fs.Parse(args[1:])
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gridctl flow run [-bootstrap addr] <file>")
		os.Exit(2)
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: flow: %v\n", err)
		os.Exit(2)
	}
	g, err := flow.Parse(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: flow: %v\n", err)
		os.Exit(2)
	}
	if *minCPU > 0 {
		for i := range g.Stages {
			g.Stages[i].Spec.Cons = resource.Unconstrained.Require(resource.CPU, *minCPU)
		}
	}
	plan, err := g.Validate()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: flow: %v\n", err)
		os.Exit(2)
	}

	wire.RegisterAll()
	host, err := nettransport.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()

	// A full grid peer, like the chaos harness: the engine needs the
	// overlay for routing and the node's pending map for monitoring.
	// Near-zero caps keep stage work off this process.
	caps := resource.Vector{0.1, 1, 1}
	ch := chord.New(host, chord.Config{
		StabilizeEvery:  500 * time.Millisecond,
		FixFingersEvery: 500 * time.Millisecond,
	})
	rn := rntree.New(host, ch, caps, "linux", rntree.Config{AggregateEvery: time.Second})
	overlay := &match.ChordOverlay{Chord: ch, Walk: rn}

	var mu sync.Mutex
	delivered := map[ids.ID]int{}
	resubmits := 0
	rec := grid.RecorderFunc(func(ev grid.Event) {
		mu.Lock()
		switch ev.Kind {
		case grid.EvResultDelivered:
			delivered[ev.JobID]++
		case grid.EvResubmitted:
			resubmits++
		}
		mu.Unlock()
	})
	gn := grid.NewNode(host, caps, "linux", overlay, &match.RNTree{RN: rn}, rec, grid.Config{
		HeartbeatEvery: time.Second,
		PeerDown:       host.PeerDown,
		Health:         gridctlHealth(host),
	})
	rn.SetLoadFn(gn.QueueLen)

	joined := make(chan error, 1)
	host.Go("join", func(rt transport.Runtime) {
		var jerr error
		for try := 0; try < 20; try++ {
			if jerr = ch.Join(rt, transport.Addr(*bootstrap)); jerr == nil {
				break
			}
			rt.Sleep(500 * time.Millisecond)
		}
		joined <- jerr
	})
	if err := <-joined; err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: flow: join via %s: %v\n", *bootstrap, err)
		os.Exit(1)
	}
	ch.Start()
	rn.Start()
	gn.Start()
	gn.StartClientMonitor(*patience)
	time.Sleep(2 * time.Second) // ring + tree convergence before submitting

	began := time.Now()
	runDone := make(chan error, 1)
	var results map[string]flow.StageResult
	host.Go("flow-run", func(rt transport.Runtime) {
		var ferr error
		results, ferr = flow.RunPlan(rt, gn, plan, flow.Options{
			Deadline: rt.Now() + *timeout,
			OnStage: func(sr flow.StageResult) {
				fmt.Printf("stage %-12s job=%s a%d elapsed=%v out=%dB\n",
					sr.Name, sr.JobID.Short(), sr.Attempt,
					(sr.Finished - sr.Started).Round(time.Millisecond), len(sr.Output))
			},
		})
		runDone <- ferr
	})
	ferr := <-runDone

	res := flowResult{Flow: g.Name, Stages: len(plan.Order), Delivered: len(results), ElapsedS: time.Since(began).Seconds()}
	mu.Lock()
	for _, c := range delivered {
		if c > 1 {
			res.Duplicates += c - 1
		}
	}
	res.Resubmits = resubmits
	mu.Unlock()

	if *jsonOut {
		b, _ := json.Marshal(res)
		fmt.Println(string(b))
	} else {
		fmt.Printf("flow %s: %d/%d stages delivered, %d duplicates, %d resubmits in %.1fs\n",
			res.Flow, res.Delivered, res.Stages, res.Duplicates, res.Resubmits, res.ElapsedS)
	}
	if ferr != nil {
		fmt.Fprintf(os.Stderr, "gridctl: flow: %v\n", ferr)
		os.Exit(1)
	}
	if res.Delivered != res.Stages || res.Duplicates != 0 {
		fmt.Fprintf(os.Stderr, "gridctl: flow: FAIL: want %d stages delivered exactly once, got delivered=%d duplicates=%d\n",
			res.Stages, res.Delivered, res.Duplicates)
		os.Exit(1)
	}
}
