package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/chord"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/match"
	"repro/internal/nettransport"
	"repro/internal/resource"
	"repro/internal/rntree"
	"repro/internal/transport"
	"repro/internal/wire"
)

// chaosResult is the JSON summary one chaos soak emits (consumed by
// scripts/live_chaos.sh).
type chaosResult struct {
	Jobs       int     `json:"jobs"`
	Delivered  int     `json:"delivered"`
	Duplicates int     `json:"duplicates"`
	Lost       int     `json:"lost"`
	Resubmits  int     `json:"resubmits"`
	ElapsedS   float64 `json:"elapsed_s"`
}

// chaosCmd runs the live chaos soak: it joins the grid as a real peer
// (with negligible capabilities, so constrained jobs never run here),
// submits jobs through the full client path — classified inject
// retries, pending registration, the resubmission monitor — and then
// asserts the robustness contract end to end: every job delivered
// exactly once, zero lost, no duplicates. The grid nodes themselves
// are expected to run under a seeded -chaos schedule; this harness can
// additionally injure its own outbound calls via -chaos/-chaos-seed.
//
//	gridctl chaos -bootstrap 127.0.0.1:7001 -n 40 -work 300ms -json
func chaosCmd(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	bootstrap := fs.String("bootstrap", "127.0.0.1:7001", "grid node to join through")
	n := fs.Int("n", 40, "number of jobs")
	work := fs.Duration("work", 300*time.Millisecond, "per-job synthetic runtime")
	minCPU := fs.Float64("mincpu", 1, "CPU constraint on every job (kept above this harness's own caps so it never runs work)")
	patience := fs.Duration("patience", 5*time.Second, "client-monitor silence window before a job is resubmitted")
	timeout := fs.Duration("timeout", 3*time.Minute, "deadline for all results")
	chaosSpec := fs.String("chaos", "", "fault schedule for this client's own outbound calls ('' = off)")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for -chaos")
	jsonOut := fs.Bool("json", false, "emit one JSON result line on stdout")
	_ = fs.Parse(args)

	var topts nettransport.Opts
	if *chaosSpec != "" {
		rules, err := nettransport.ParseRules(*chaosSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridctl: chaos: %v\n", err)
			os.Exit(2)
		}
		topts.Chaos = nettransport.NewChaos(*chaosSeed, rules...)
	}

	wire.RegisterAll()
	host, err := nettransport.ListenOpts("127.0.0.1:0", topts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()

	// A full grid peer, not a bare RPC client: submissions need the
	// overlay for routing and the node's pending map for monitoring.
	// Near-zero caps keep real work off this process.
	caps := resource.Vector{0.1, 1, 1}
	ch := chord.New(host, chord.Config{
		StabilizeEvery:  500 * time.Millisecond,
		FixFingersEvery: 500 * time.Millisecond,
	})
	rn := rntree.New(host, ch, caps, "linux", rntree.Config{AggregateEvery: time.Second})
	overlay := &match.ChordOverlay{Chord: ch, Walk: rn}

	var mu sync.Mutex
	delivered := map[ids.ID]int{}
	resubmits := 0
	rec := grid.RecorderFunc(func(ev grid.Event) {
		mu.Lock()
		switch ev.Kind {
		case grid.EvResultDelivered:
			delivered[ev.JobID]++
		case grid.EvResubmitted:
			resubmits++
		}
		mu.Unlock()
	})
	gn := grid.NewNode(host, caps, "linux", overlay, &match.RNTree{RN: rn}, rec, grid.Config{
		HeartbeatEvery: time.Second,
		PeerDown:       host.PeerDown,
		Health:         gridctlHealth(host),
	})
	rn.SetLoadFn(gn.QueueLen)

	joined := make(chan error, 1)
	host.Go("join", func(rt transport.Runtime) {
		var jerr error
		for try := 0; try < 20; try++ {
			if jerr = ch.Join(rt, transport.Addr(*bootstrap)); jerr == nil {
				break
			}
			rt.Sleep(500 * time.Millisecond)
		}
		joined <- jerr
	})
	if err := <-joined; err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: chaos: join via %s: %v\n", *bootstrap, err)
		os.Exit(1)
	}
	ch.Start()
	rn.Start()
	gn.Start()
	gn.StartClientMonitor(*patience)
	time.Sleep(2 * time.Second) // ring + tree convergence before submitting

	res := chaosResult{Jobs: *n}
	began := time.Now()
	soakDone := make(chan int, 1)
	host.Go("chaos-soak", func(rt transport.Runtime) {
		spec := grid.JobSpec{
			Work: *work,
			Cons: resource.Unconstrained.Require(resource.CPU, *minCPU),
		}
		for i := 0; i < *n; i++ {
			// Submission errors are tolerated: the pending entry is
			// registered before injection, so the monitor recovers jobs
			// whose bounded inject retries all failed under chaos. A
			// genuinely lost job surfaces as a non-zero AwaitAll below.
			_, _ = gn.Submit(rt, spec)
		}
		soakDone <- gn.AwaitAll(rt, rt.Now()+*timeout)
	})
	res.Lost = <-soakDone
	res.ElapsedS = time.Since(began).Seconds()

	mu.Lock()
	for _, c := range delivered {
		res.Delivered++
		if c > 1 {
			res.Duplicates += c - 1
		}
	}
	res.Resubmits = resubmits
	mu.Unlock()

	if *jsonOut {
		b, _ := json.Marshal(res)
		fmt.Println(string(b))
	} else {
		fmt.Printf("chaos soak: %d jobs, %d delivered, %d lost, %d duplicates, %d resubmits in %.1fs\n",
			res.Jobs, res.Delivered, res.Lost, res.Duplicates, res.Resubmits, res.ElapsedS)
	}
	if res.Lost != 0 || res.Delivered != res.Jobs || res.Duplicates != 0 {
		fmt.Fprintf(os.Stderr, "gridctl: chaos: FAIL: want %d delivered exactly once, got delivered=%d lost=%d duplicates=%d\n",
			res.Jobs, res.Delivered, res.Lost, res.Duplicates)
		os.Exit(1)
	}
}

// gridctlHealth adapts the transport breaker snapshot for grid.health,
// mirroring the gridnode adapter.
func gridctlHealth(host *nettransport.Host) func() []grid.PeerHealth {
	return func() []grid.PeerHealth {
		hs := host.Health()
		out := make([]grid.PeerHealth, len(hs))
		for i, e := range hs {
			out[i] = grid.PeerHealth{
				Peer:        e.Peer,
				State:       e.State,
				ConsecFails: e.ConsecFails,
				Failures:    e.Failures,
				Successes:   e.Successes,
				Opens:       e.Opens,
				RetryIn:     e.RetryIn,
			}
		}
		return out
	}
}
