package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/nettransport"
	"repro/internal/transport"
	"repro/internal/wire"
)

// benchResult is the JSON shape one bench run emits (consumed by
// scripts/live_bench.sh to assemble BENCH_live.json).
type benchResult struct {
	Transport      string  `json:"transport"` // this client's call path: pooled|perdial
	Batched        bool    `json:"batched"`   // grid.injectbatch vs one grid.inject per job
	Jobs           int     `json:"jobs"`
	WorkMS         int64   `json:"work_ms"`
	InjectElapsedS float64 `json:"inject_elapsed_s"`
	InjectJobsPerS float64 `json:"inject_jobs_per_sec"`
	InjectP50MS    float64 `json:"inject_p50_ms"`
	InjectP99MS    float64 `json:"inject_p99_ms"`
	E2EElapsedS    float64 `json:"e2e_elapsed_s"`
	E2EJobsPerS    float64 `json:"e2e_jobs_per_sec"`
	Results        int     `json:"results"`
	Rejections     int     `json:"rejections"` // retry-after answers honored during the run
	InjectRPCs     int     `json:"inject_rpcs"`
}

// benchCmd drives a live grid at full tilt from one client and reports
// two throughput numbers: injection (submit -> owner ack, the path this
// transport work targets) and end-to-end (submit -> result delivered).
//
//	gridctl bench -node 127.0.0.1:7001 -n 200 -work 5ms -batch
func benchCmd(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	node := fs.String("node", "127.0.0.1:7001", "injection node address")
	n := fs.Int("n", 200, "number of jobs")
	work := fs.Duration("work", 5*time.Millisecond, "per-job synthetic runtime")
	transportMode := fs.String("transport", "pooled", "client call path: pooled or perdial")
	batch := fs.Bool("batch", false, "submit via grid.injectbatch instead of one grid.inject per job")
	batchMax := fs.Int("batchmax", 64, "jobs per grid.injectbatch RPC")
	timeout := fs.Duration("timeout", 5*time.Minute, "deadline for all results")
	jsonOut := fs.Bool("json", false, "emit one JSON result line on stdout")
	_ = fs.Parse(args)

	var opts nettransport.Opts
	switch *transportMode {
	case "pooled":
	case "perdial":
		opts.PerDial = true
	default:
		fmt.Fprintf(os.Stderr, "gridctl: bench: unknown -transport %q (pooled|perdial)\n", *transportMode)
		os.Exit(2)
	}

	wire.RegisterAll()
	host, err := nettransport.ListenOpts("127.0.0.1:0", opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()

	var mu sync.Mutex
	results := map[ids.ID]bool{}
	var lastResult time.Time
	gotAll := make(chan struct{})
	want := *n
	host.Handle(grid.MResult, func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		res := req.(grid.ResultReq).Res
		mu.Lock()
		if !results[res.JobID] {
			results[res.JobID] = true
			lastResult = time.Now()
			if len(results) == want {
				close(gotAll)
			}
		}
		mu.Unlock()
		return grid.ResultResp{}, nil
	})

	res := benchResult{Transport: *transportMode, Batched: *batch, Jobs: want, WorkMS: work.Milliseconds()}
	began := time.Now()
	benchErr := make(chan error, 1)
	host.Go("bench", func(rt transport.Runtime) {
		base := int(time.Now().UnixNano() % 1e9)
		reqs := make([]grid.InjectReq, want)
		for i := range reqs {
			reqs[i] = grid.InjectReq{Client: host.Addr(), Seq: base + i, Work: *work}
		}
		var lats []time.Duration
		var err error
		if *batch {
			lats, err = injectBatched(rt, transport.Addr(*node), reqs, *batchMax, &res)
		} else {
			lats, err = injectSingly(rt, transport.Addr(*node), reqs, &res)
		}
		if err != nil {
			benchErr <- err
			return
		}
		elapsed := time.Since(began)
		res.InjectElapsedS = elapsed.Seconds()
		res.InjectJobsPerS = float64(want) / elapsed.Seconds()
		res.InjectP50MS = percentile(lats, 0.50).Seconds() * 1e3
		res.InjectP99MS = percentile(lats, 0.99).Seconds() * 1e3
		res.InjectRPCs = len(lats)
		benchErr <- nil
	})
	if err := <-benchErr; err != nil {
		fmt.Fprintf(os.Stderr, "gridctl: bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: injected %d jobs in %.3fs (%.0f jobs/s, p50 %.2fms, p99 %.2fms, %d RPCs, %d rejections)\n",
		want, res.InjectElapsedS, res.InjectJobsPerS, res.InjectP50MS, res.InjectP99MS, res.InjectRPCs, res.Rejections)

	select {
	case <-gotAll:
	case <-time.After(*timeout):
		mu.Lock()
		got := len(results)
		mu.Unlock()
		fmt.Fprintf(os.Stderr, "gridctl: bench: timeout with %d/%d results\n", got, want)
		os.Exit(1)
	}
	mu.Lock()
	res.Results = len(results)
	e2e := lastResult.Sub(began)
	mu.Unlock()
	res.E2EElapsedS = e2e.Seconds()
	res.E2EJobsPerS = float64(want) / e2e.Seconds()
	fmt.Fprintf(os.Stderr, "bench: all %d results in %.3fs end-to-end (%.0f jobs/s)\n",
		want, res.E2EElapsedS, res.E2EJobsPerS)

	if *jsonOut {
		out, _ := json.Marshal(res)
		fmt.Println(string(out))
	}
}

// injectSingly submits one grid.inject RPC per job, honoring
// backpressure retry-after hints and retrying transient failures.
func injectSingly(rt transport.Runtime, node transport.Addr, reqs []grid.InjectReq, res *benchResult) ([]time.Duration, error) {
	lats := make([]time.Duration, 0, len(reqs))
	for i := range reqs {
		var lastErr error
		ok := false
		for try := 0; try < 10 && !ok; try++ {
			t0 := time.Now()
			raw, err := rt.CallT(node, grid.MInject, reqs[i], 30*time.Second)
			lats = append(lats, time.Since(t0))
			if err != nil {
				lastErr = err
				rt.Sleep(200 * time.Millisecond)
				continue
			}
			if ra := raw.(grid.InjectResp).RetryAfterMS; ra > 0 {
				res.Rejections++
				rt.Sleep(time.Duration(ra) * time.Millisecond)
				continue
			}
			ok = true
		}
		if !ok {
			return lats, fmt.Errorf("inject %d never accepted: %v", i, lastErr)
		}
	}
	return lats, nil
}

// injectBatched submits jobs in grid.injectbatch chunks, re-batching
// rejected or failed items after honoring the largest retry-after hint.
func injectBatched(rt transport.Runtime, node transport.Addr, reqs []grid.InjectReq, batchMax int, res *benchResult) ([]time.Duration, error) {
	var lats []time.Duration
	pendingReqs := reqs
	for try := 0; try < 10 && len(pendingReqs) > 0; try++ {
		var failed []grid.InjectReq
		var maxAfter time.Duration
		for lo := 0; lo < len(pendingReqs); lo += batchMax {
			hi := lo + batchMax
			if hi > len(pendingReqs) {
				hi = len(pendingReqs)
			}
			chunk := pendingReqs[lo:hi]
			t0 := time.Now()
			raw, err := rt.CallT(node, grid.MInjectBatch, grid.InjectBatchReq{Items: chunk}, 30*time.Second)
			lats = append(lats, time.Since(t0))
			if err != nil {
				failed = append(failed, chunk...)
				if maxAfter < 200*time.Millisecond {
					maxAfter = 200 * time.Millisecond
				}
				continue
			}
			for k, r := range raw.(grid.InjectBatchResp).Results {
				if r.RetryAfterMS > 0 {
					res.Rejections++
					failed = append(failed, chunk[k])
					if a := time.Duration(r.RetryAfterMS) * time.Millisecond; a > maxAfter {
						maxAfter = a
					}
				} else if r.Err != "" {
					failed = append(failed, chunk[k])
					if maxAfter < 200*time.Millisecond {
						maxAfter = 200 * time.Millisecond
					}
				}
			}
		}
		pendingReqs = failed
		if len(pendingReqs) > 0 {
			rt.Sleep(maxAfter)
		}
	}
	if len(pendingReqs) > 0 {
		return lats, fmt.Errorf("%d jobs never accepted after retries", len(pendingReqs))
	}
	return lats, nil
}

func percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p * float64(len(s)-1))
	return s[idx]
}
