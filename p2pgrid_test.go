package p2pgrid

import (
	"testing"
	"time"
)

func TestClusterQuickstart(t *testing.T) {
	c := New(Config{Nodes: 32, Algorithm: RNTree, Seed: 42})
	c.SubmitBatch(0, time.Second, 20, Job{Runtime: 30 * time.Second})
	rep := c.Run(time.Hour)
	if rep.Delivered != 20 {
		t.Fatalf("delivered %d/20", rep.Delivered)
	}
	if rep.Wait.N != 20 || rep.Wait.Mean < 0 {
		t.Fatalf("wait stats: %+v", rep.Wait)
	}
	if rep.Messages == 0 {
		t.Fatal("no network traffic recorded")
	}
}

func TestClusterAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{RNTree, CAN, CANPush, Central, Random} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			c := New(Config{Nodes: 24, Algorithm: alg, Seed: 7})
			c.SubmitBatch(0, 2*time.Second, 10, Job{Runtime: 20 * time.Second})
			rep := c.Run(time.Hour)
			if rep.Delivered != 10 {
				t.Fatalf("%s delivered %d/10", alg, rep.Delivered)
			}
		})
	}
}

func TestClusterConstraints(t *testing.T) {
	c := New(Config{
		Nodes: 16,
		Seed:  3,
		NodeSpec: func(i int) Node {
			n := DefaultNode()
			if i == 5 {
				n.CPU = 10
			} else {
				n.CPU = 1
			}
			return n
		},
	})
	c.Submit(0, Job{MinCPU: 8, Runtime: 10 * time.Second})
	rep := c.Run(time.Hour)
	if rep.Delivered != 1 {
		t.Fatalf("delivered %d/1", rep.Delivered)
	}
	for i, n := range rep.PerNodeJobs {
		if n > 0 && i != 5 {
			t.Fatalf("job ran on node %d, want 5", i)
		}
	}
	if rep.PerNodeJobs[5] != 1 {
		t.Fatal("node 5 did not run the job")
	}
}

func TestClusterFailureRecovery(t *testing.T) {
	c := New(Config{
		Nodes:          24,
		Algorithm:      RNTree,
		Seed:           9,
		Maintenance:    true,
		HeartbeatEvery: time.Second,
		RunDeadAfter:   4 * time.Second,
		OwnerDeadAfter: 4 * time.Second,
	})
	c.SubmitBatch(0, time.Second, 10, Job{Runtime: 60 * time.Second})
	// Crash a third of the nodes (not node 0, the client) mid-run.
	for i := 1; i <= 8; i++ {
		c.Crash(i*2, 30*time.Second)
	}
	rep := c.Run(4 * time.Hour)
	if rep.Delivered != 10 {
		t.Fatalf("delivered %d/10 after crashes (recoveries=%d adoptions=%d resubmits=%d)",
			rep.Delivered, rep.Recoveries, rep.Adoptions, rep.Resubmits)
	}
}

func TestClusterMisuse(t *testing.T) {
	c := New(Config{Nodes: 4})
	c.Submit(0, Job{Runtime: time.Second})
	_ = c.Run(time.Minute)
	mustPanic(t, func() { c.Run(time.Minute) })
	mustPanic(t, func() { c.Submit(0, Job{}) })
	c2 := New(Config{Nodes: 4})
	mustPanic(t, func() { c2.Crash(99, 0) })
}

func TestJobConstraintMapping(t *testing.T) {
	j := Job{MinCPU: 2, MinMemoryMB: 512, OS: "linux"}
	cons := j.cons()
	if cons.Count() != 2 || cons.OS != "linux" {
		t.Fatalf("cons = %s", cons)
	}
	if (Job{}).cons().Count() != 0 {
		t.Fatal("empty job should be unconstrained")
	}
}

func TestSpeedScalingFacade(t *testing.T) {
	c := New(Config{
		Nodes:        8,
		Seed:         5,
		SpeedScaling: true,
		NodeSpec:     func(i int) Node { n := DefaultNode(); n.CPU = 10; return n },
	})
	c.Submit(0, Job{Runtime: 100 * time.Second})
	rep := c.Run(time.Hour)
	if rep.Delivered != 1 {
		t.Fatal("not delivered")
	}
	// 100s of work at speed 10 completes in ~10s, so turnaround must be
	// far below 100s.
	if rep.Turnaround.Mean > 60 {
		t.Fatalf("turnaround %.1fs suggests no speed scaling", rep.Turnaround.Mean)
	}
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}
