// Livegrid: boots a real 4-peer desktop grid over TCP sockets in one
// process and runs actual sandboxed N-body integrations through the
// full stack — Chord ring, RN-Tree matchmaking, owner/run-node
// protocol, heartbeats, and direct result delivery. The same protocol
// code the simulator exercises, over real sockets and real work.
//
//	go run ./examples/livegrid
package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/chord"
	"repro/internal/grid"
	"repro/internal/match"
	"repro/internal/nettransport"
	"repro/internal/resource"
	"repro/internal/rntree"
	"repro/internal/sandbox"
	"repro/internal/transport"
	"repro/internal/wire"
)

// nbody integrates a Plummer-like sphere with a leapfrog scheme and
// returns the relative energy drift — the correctness check a real
// astronomy campaign would make.
func nbody(bodies, steps int) float64 {
	type vec struct{ x, y, z float64 }
	pos := make([]vec, bodies)
	vel := make([]vec, bodies)
	// Deterministic initial conditions on a spiral shell.
	for i := range pos {
		t := float64(i) * 2.3999632 // golden angle
		r := 1 + float64(i%7)/7
		pos[i] = vec{r * math.Cos(t), r * math.Sin(t), (float64(i%13) - 6) / 13}
		vel[i] = vec{-math.Sin(t) / 4, math.Cos(t) / 4, 0}
	}
	const dt, eps = 0.001, 0.05
	acc := func() []vec {
		a := make([]vec, bodies)
		for i := 0; i < bodies; i++ {
			for j := i + 1; j < bodies; j++ {
				dx := pos[j].x - pos[i].x
				dy := pos[j].y - pos[i].y
				dz := pos[j].z - pos[i].z
				r2 := dx*dx + dy*dy + dz*dz + eps*eps
				inv := 1 / (r2 * math.Sqrt(r2))
				a[i].x += dx * inv
				a[i].y += dy * inv
				a[i].z += dz * inv
				a[j].x -= dx * inv
				a[j].y -= dy * inv
				a[j].z -= dz * inv
			}
		}
		return a
	}
	energy := func() float64 {
		e := 0.0
		for i := 0; i < bodies; i++ {
			e += 0.5 * (vel[i].x*vel[i].x + vel[i].y*vel[i].y + vel[i].z*vel[i].z)
			for j := i + 1; j < bodies; j++ {
				dx := pos[j].x - pos[i].x
				dy := pos[j].y - pos[i].y
				dz := pos[j].z - pos[i].z
				e -= 1 / math.Sqrt(dx*dx+dy*dy+dz*dz+eps*eps)
			}
		}
		return e
	}
	e0 := energy()
	a := acc()
	for s := 0; s < steps; s++ {
		for i := range pos {
			vel[i].x += 0.5 * dt * a[i].x
			vel[i].y += 0.5 * dt * a[i].y
			vel[i].z += 0.5 * dt * a[i].z
			pos[i].x += dt * vel[i].x
			pos[i].y += dt * vel[i].y
			pos[i].z += dt * vel[i].z
		}
		a = acc()
		for i := range pos {
			vel[i].x += 0.5 * dt * a[i].x
			vel[i].y += 0.5 * dt * a[i].y
			vel[i].z += 0.5 * dt * a[i].z
		}
	}
	return math.Abs((energy() - e0) / e0)
}

func main() {
	wire.RegisterAll()
	const N = 4

	chCfg := chord.Config{StabilizeEvery: 50 * time.Millisecond, FixFingersEvery: 50 * time.Millisecond}
	rnCfg := rntree.Config{AggregateEvery: 100 * time.Millisecond}

	hosts := make([]*nettransport.Host, N)
	chords := make([]*chord.Node, N)
	grids := make([]*grid.Node, N)

	for i := 0; i < N; i++ {
		h, err := nettransport.Listen("127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer h.Close()
		hosts[i] = h
		caps := resource.Vector{float64(3 + i*2), 2048, 50}
		chords[i] = chord.New(h, chCfg)
		rn := rntree.New(h, chords[i], caps, "linux", rnCfg)
		overlay := &match.ChordOverlay{Chord: chords[i], Walk: rn}

		// Real work: each job runs an N-body integration inside a
		// sandbox with no network and a private filesystem root.
		box := sandbox.New(sandbox.Policy{MaxRuntime: time.Minute})
		addr := h.Addr()
		executor := func(prof grid.Profile) (int, error) {
			out, err := box.Run(context.Background(), func(ctx context.Context, env *sandbox.Env) ([]byte, error) {
				bodies := 64 + prof.InputKB*16
				drift := nbody(bodies, 25)
				report := fmt.Sprintf("node=%s bodies=%d energy-drift=%.2e", addr, bodies, drift)
				if err := env.WriteFile("result.txt", []byte(report)); err != nil {
					return nil, err
				}
				return []byte(report), nil
			})
			if err != nil {
				return 0, err
			}
			fmt.Printf("  ran: %s\n", out)
			return len(out) / 1024, nil
		}
		grids[i] = grid.NewNode(h, caps, "linux", overlay, &match.RNTree{RN: rn}, nil, grid.Config{
			HeartbeatEvery:  200 * time.Millisecond,
			IdlePoll:        50 * time.Millisecond,
			MatchRetryEvery: 500 * time.Millisecond,
			Executor:        executor,
		})
		rn.SetLoadFn(grids[i].QueueLen)

		if i == 0 {
			chords[0].Create()
		}
		_ = rn
	}

	// Join the ring sequentially, then start everything.
	var wg sync.WaitGroup
	for i := 1; i < N; i++ {
		i := i
		wg.Add(1)
		hosts[i].Go("join", func(rt transport.Runtime) {
			defer wg.Done()
			for try := 0; try < 20; try++ {
				if err := chords[i].Join(rt, hosts[0].Addr()); err == nil {
					return
				}
				rt.Sleep(100 * time.Millisecond)
			}
		})
	}
	wg.Wait()
	for i := 0; i < N; i++ {
		chords[i].Start()
		grids[i].Start()
	}
	// The client-side watchdog: if a job's owner gives up (e.g. the
	// matchmaking walk keeps missing the one peer that satisfies a tight
	// constraint while the grid is busy), the job is resubmitted under a
	// fresh GUID instead of being lost.
	grids[0].StartClientMonitor(2 * time.Second)
	fmt.Printf("live grid up: %d peers on real TCP sockets\n", N)
	time.Sleep(1500 * time.Millisecond) // ring + tree convergence

	// Submit a small sweep; constraints steer big runs to fast peers.
	done := make(chan bool, 1)
	hosts[0].Go("client", func(rt transport.Runtime) {
		for _, kb := range []int{2, 6, 10} {
			job := grid.JobSpec{Work: time.Second, InputKB: kb}
			if kb >= 10 {
				job.Cons = job.Cons.Require(resource.CPU, 7)
			}
			if _, err := grids[0].Submit(rt, job); err != nil {
				fmt.Fprintln(os.Stderr, "submit:", err)
			}
		}
		done <- grids[0].AwaitAll(rt, rt.Now()+time.Minute) == 0
	})
	if ok := <-done; !ok {
		fmt.Fprintln(os.Stderr, "some jobs did not finish")
		os.Exit(1)
	}
	fmt.Println("all sandboxed N-body jobs completed and returned results")
}
