// Churn: demonstrates the paper's robustness machinery (Section 2).
// Long jobs run while a third of the grid crashes mid-execution; owners
// detect dead run nodes by heartbeat timeout and rematch, run nodes
// detect dead owners and have the job adopted by the new DHT owner, and
// clients resubmit jobs whose owner and run node both vanished.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"time"

	p2pgrid "repro"
)

func main() {
	cluster := p2pgrid.New(p2pgrid.Config{
		Nodes:          48,
		Algorithm:      p2pgrid.RNTree,
		Seed:           11,
		Maintenance:    true, // overlay repair loops on: we will need them
		HeartbeatEvery: time.Second,
		RunDeadAfter:   5 * time.Second,
		OwnerDeadAfter: 5 * time.Second,
	})

	const jobs = 30
	for i := 0; i < jobs; i++ {
		cluster.Submit(time.Duration(i)*2*time.Second, p2pgrid.Job{
			Runtime: 2 * time.Minute,
		})
	}

	// Crash 16 of the 48 peers (never node 0, the submitting client)
	// while the jobs are in flight.
	crashed := 0
	for i := 1; i < cluster.NodeCount() && crashed < 16; i += 3 {
		cluster.Crash(i, time.Duration(30+crashed*5)*time.Second)
		crashed++
	}
	fmt.Printf("submitting %d two-minute jobs, then crashing %d of %d peers\n\n",
		jobs, crashed, cluster.NodeCount())

	report := cluster.Run(6 * time.Hour)

	fmt.Printf("delivered:          %d/%d\n", report.Delivered, report.Submitted)
	fmt.Printf("run-node failures:  %d detected by owners (job rematched)\n", report.Recoveries)
	fmt.Printf("owner adoptions:    %d (run node found the new DHT owner)\n", report.Adoptions)
	fmt.Printf("client resubmits:   %d (owner and run node both lost)\n", report.Resubmits)
	fmt.Printf("avg turnaround:     %.1fs (the 120s of work plus recovery delays)\n", report.Turnaround.Mean)

	if report.Delivered == report.Submitted {
		fmt.Println("\nall jobs survived the churn — no central server required")
	} else {
		fmt.Printf("\n%d jobs missed the drain deadline\n", report.Submitted-report.Delivered)
	}
}
