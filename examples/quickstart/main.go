// Quickstart: build a 64-peer simulated desktop grid with RN-Tree
// matchmaking, submit 100 jobs, and print the outcome.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	p2pgrid "repro"
)

func main() {
	cluster := p2pgrid.New(p2pgrid.Config{
		Nodes:     64,
		Algorithm: p2pgrid.RNTree,
		Seed:      42,
	})

	// 100 jobs, one per second, each ~30 s of work; a third of them
	// need a fast CPU.
	for i := 0; i < 100; i++ {
		job := p2pgrid.Job{Runtime: 30 * time.Second}
		if i%3 == 0 {
			job.MinCPU = 6
		}
		cluster.Submit(time.Duration(i)*time.Second, job)
	}

	report := cluster.Run(2 * time.Hour)

	fmt.Printf("jobs delivered:   %d/%d\n", report.Delivered, report.Submitted)
	fmt.Printf("wait time:        avg %.1fs  stdev %.1fs  p95 %.1fs\n",
		report.Wait.Mean, report.Wait.Std, report.Wait.P95)
	fmt.Printf("turnaround:       avg %.1fs\n", report.Turnaround.Mean)
	fmt.Printf("match cost:       avg %.1f overlay messages/job\n", report.MatchCost.Mean)
	fmt.Printf("network traffic:  %d messages total\n", report.Messages)

	busy := 0
	for _, n := range report.PerNodeJobs {
		if n > 0 {
			busy++
		}
	}
	fmt.Printf("load spread:      %d of %d peers ran jobs\n", busy, cluster.NodeCount())
}
