// Astronomy: the paper's motivating workload — a parameter sweep of
// N-body gravity simulations (habitable-planet searches, asteroid
// binary formation) farmed out to a heterogeneous desktop grid.
//
// Each sweep point is one independent, CPU-bound, low-I/O job; the
// bigger configurations need more memory and a faster CPU. The example
// runs the same campaign under all three matchmakers and compares job
// wait times, mirroring how the paper's astronomers would choose a
// configuration.
//
//	go run ./examples/astronomy
package main

import (
	"fmt"
	"time"

	p2pgrid "repro"
)

// sweepPoint is one simulation configuration in the campaign.
type sweepPoint struct {
	bodies int
	steps  int
}

// cost estimates runtime: direct-summation N-body is O(bodies^2) per
// step. Calibrated so the largest point takes ~6 simulated minutes.
func (p sweepPoint) cost() time.Duration {
	return time.Duration(float64(p.bodies*p.bodies*p.steps) / 4e4 * float64(time.Second))
}

// job maps a sweep point to grid requirements: big runs need memory
// for particle state and a fast CPU to finish within the campaign.
func (p sweepPoint) job() p2pgrid.Job {
	j := p2pgrid.Job{Runtime: p.cost(), InputKB: 2 + p.bodies/128}
	if p.bodies >= 1024 {
		j.MinMemoryMB = 2048
		j.MinCPU = 5
	} else if p.bodies >= 512 {
		j.MinMemoryMB = 1024
	}
	return j
}

func main() {
	// The campaign: bodies x integration-steps grid, 72 jobs.
	var sweep []sweepPoint
	for _, bodies := range []int{128, 256, 512, 1024} {
		for _, steps := range []int{20, 40, 60} {
			for rep := 0; rep < 6; rep++ {
				sweep = append(sweep, sweepPoint{bodies: bodies, steps: steps})
			}
		}
	}

	fmt.Printf("campaign: %d N-body simulations\n\n", len(sweep))
	fmt.Printf("%-10s %10s %12s %12s %12s\n", "algorithm", "delivered", "avg-wait(s)", "p95-wait(s)", "msgs/match")

	for _, alg := range []p2pgrid.Algorithm{p2pgrid.RNTree, p2pgrid.CANPush, p2pgrid.Central} {
		cluster := p2pgrid.New(p2pgrid.Config{
			Nodes:     200,
			Algorithm: alg,
			Seed:      7,
			NodeSpec: func(i int) p2pgrid.Node {
				// A volunteer population: mostly modest desktops, some
				// lab workstations with lots of memory and fast CPUs.
				n := p2pgrid.Node{CPU: float64(1 + i%6), MemoryMB: 512, DiskGB: 40, OS: "linux"}
				if i%5 == 0 {
					n.MemoryMB = 4096
					n.CPU = float64(5 + i%5)
				}
				return n
			},
		})
		// Submissions arrive in a burst, 2 s apart, as a sweep script
		// would generate them.
		for i, p := range sweep {
			cluster.Submit(time.Duration(i)*2*time.Second, p.job())
		}
		rep := cluster.Run(6 * time.Hour)
		fmt.Printf("%-10s %6d/%3d %12.1f %12.1f %12.1f\n",
			alg, rep.Delivered, rep.Submitted, rep.Wait.Mean, rep.Wait.P95, rep.MatchCost.Mean)
	}

	fmt.Println("\nEvery matchmaker must route the 1024-body runs to the")
	fmt.Println("big-memory workstations; the interesting difference is how")
	fmt.Println("evenly the small runs spread across the modest desktops.")
}
