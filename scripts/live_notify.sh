#!/usr/bin/env bash
# Live push-notification smoke: boot a 3-node TCP grid with the DHT
# pub/sub overlay on (-notify), submit a job, follow its lineage with
# `gridctl watch`, and assert the paper-level claim end to end
# (DESIGN.md §13):
#
#   1. Push     the watch stream prints the job's transitions as owners
#               publish them, ending with completed — no status polling
#               anywhere in the process.
#   2. Traffic  pubsub_notifications_total > 0 across the grid (the
#               overlay actually carried the stream) while
#               grid_status_probes_total stays zero (nobody fell back
#               to polling).
#
# Environment knobs:
#   NOTIFY_WORK     per-job synthetic runtime   (default 6s)
#   NOTIFY_TIMEOUT  watch/result deadline       (default 90s)
set -euo pipefail

cd "$(dirname "$0")/.."

WORK=${NOTIFY_WORK:-6s}
TIMEOUT=${NOTIFY_TIMEOUT:-90s}

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/gridnode" ./cmd/gridnode
go build -o "$workdir/gridctl" ./cmd/gridctl

# Nodes on 7811-7813, metrics on 7911-7913 (live_chaos.sh owns 780x).
"$workdir/gridnode" -listen 127.0.0.1:7811 -metrics-addr 127.0.0.1:7911 \
  -notify >"$workdir/n1.log" 2>&1 &
pids+=($!)
sleep 1
"$workdir/gridnode" -listen 127.0.0.1:7812 -bootstrap 127.0.0.1:7811 -cpu 8 \
  -metrics-addr 127.0.0.1:7912 -notify >"$workdir/n2.log" 2>&1 &
pids+=($!)
"$workdir/gridnode" -listen 127.0.0.1:7813 -bootstrap 127.0.0.1:7811 -cpu 3 \
  -metrics-addr 127.0.0.1:7913 -notify >"$workdir/n3.log" 2>&1 &
pids+=($!)
sleep 4 # ring + tree convergence

# Submit one job in the background; its stdout names the lineage GUID
# the watch follows.
"$workdir/gridctl" -node 127.0.0.1:7811 -n 1 -work "$WORK" \
  -timeout "$TIMEOUT" >"$workdir/submit.log" 2>&1 &
submit_pid=$!
pids+=("$submit_pid")

job=""
for _ in $(seq 1 30); do
  job=$(awk '/^submitted job=/ { sub("job=", "", $2); print $2; exit }' "$workdir/submit.log" || true)
  [ -n "$job" ] && break
  sleep 1
done
if [ -z "$job" ]; then
  echo "live_notify: FAIL: no job submitted within 30s" >&2
  cat "$workdir/submit.log" >&2
  exit 1
fi
echo "live_notify: watching job $job" >&2

if ! "$workdir/gridctl" watch -node 127.0.0.1:7811 -timeout "$TIMEOUT" \
  "$job" >"$workdir/watch.log" 2>&1; then
  echo "live_notify: FAIL: watch did not see the completed transition" >&2
  cat "$workdir/watch.log" >&2
  exit 1
fi
cat "$workdir/watch.log" >&2
if ! grep -q 'completed' "$workdir/watch.log"; then
  echo "live_notify: FAIL: watch output lacks a completed transition" >&2
  exit 1
fi

if ! wait "$submit_pid"; then
  echo "live_notify: FAIL: submission did not complete" >&2
  cat "$workdir/submit.log" >&2
  exit 1
fi

# scrape <metric> -> sum across the three nodes' /metrics endpoints.
scrape() {
  local total=0 v
  for port in 7911 7912 7913; do
    v=$(curl -sf "http://127.0.0.1:$port/metrics" |
      awk -v m="$1" '$1 == m { print $2; found=1 } END { if (!found) print 0 }')
    total=$((total + v))
  done
  echo "$total"
}

notified=$(scrape pubsub_notifications_total)
probes=$(scrape grid_status_probes_total)
echo "live_notify: pubsub_notifications_total=$notified grid_status_probes_total=$probes" >&2
if [ "$notified" -lt 1 ]; then
  echo "live_notify: FAIL: overlay carried no notifications" >&2
  exit 1
fi
if [ "$probes" -ne 0 ]; then
  echo "live_notify: FAIL: expected zero status polls, saw $probes" >&2
  exit 1
fi
echo "live_notify: PASS (push stream delivered, zero status polls)" >&2
