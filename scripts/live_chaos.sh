#!/usr/bin/env bash
# Live chaos soak: boot a 3-node TCP grid with a seeded fault schedule
# injected into every node's outbound RPCs (nettransport chaos layer,
# DESIGN.md §12) and assert the robustness contract end to end:
#
#   1. Soak        N jobs through gridctl chaos — every job delivered
#                  exactly once, zero lost, zero duplicates, while
#                  heartbeats stall, assignments reset mid-frame, and
#                  ownership transfers are refused.
#   2. Replay      the same seed twice must draw the same fault for
#                  every (peer, method, seq) decision the runs share —
#                  the determinism contract that makes a chaos failure
#                  reproducible.
#   3. Breakers    killing a node must open circuit breakers on its
#                  peers (visible in /metrics and gridctl health), and
#                  reviving it must close them again via half-open
#                  probes.
#
# Environment knobs:
#   CHAOS_JOBS   jobs per soak              (default 40)
#   CHAOS_WORK   per-job synthetic runtime  (default 200ms)
#   CHAOS_SEED   fault-schedule seed        (default 42)
#   CHAOS_SPEC   fault schedule override    (default exercises stall,
#                reset, refuse, and blackhole on the hot grid methods)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=${CHAOS_JOBS:-40}
WORK=${CHAOS_WORK:-200ms}
SEED=${CHAOS_SEED:-42}
SPEC=${CHAOS_SPEC:-'method=grid.heartbeat stall=0.25:400ms; method=grid.assign reset=0.15; method=grid.own refuse=0.15; blackhole=0.03'}

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/gridnode" ./cmd/gridnode
go build -o "$workdir/gridctl" ./cmd/gridctl

# boot_grid <tag> <extra node args...>
# Starts nodes on 7801-7803 (metrics on 7901-7903) with per-node chaos
# logs named $workdir/<tag>-nK.chaos.
boot_grid() {
  local tag=$1
  shift
  "$workdir/gridnode" -listen 127.0.0.1:7801 -metrics-addr 127.0.0.1:7901 \
    "$@" -chaos-log "$workdir/$tag-n1.chaos" >"$workdir/$tag-n1.log" 2>&1 &
  pids+=($!)
  sleep 1
  "$workdir/gridnode" -listen 127.0.0.1:7802 -bootstrap 127.0.0.1:7801 -cpu 8 \
    -metrics-addr 127.0.0.1:7902 "$@" -chaos-log "$workdir/$tag-n2.chaos" \
    >"$workdir/$tag-n2.log" 2>&1 &
  pids+=($!)
  "$workdir/gridnode" -listen 127.0.0.1:7803 -bootstrap 127.0.0.1:7801 -cpu 3 \
    -metrics-addr 127.0.0.1:7903 "$@" -chaos-log "$workdir/$tag-n3.chaos" \
    >"$workdir/$tag-n3.log" 2>&1 &
  pids+=($!)
  sleep 4 # ring + tree convergence
}

teardown_grid() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  pids=()
  sleep 1
}

# ---- Phase 1+2: two identically-seeded soaks --------------------------
run_soak() { # run_soak <tag>
  local tag=$1
  echo "live_chaos: soak $tag (jobs=$JOBS seed=$SEED spec='$SPEC')" >&2
  boot_grid "$tag" -chaos "$SPEC" -chaos-seed "$SEED"
  "$workdir/gridctl" chaos -bootstrap 127.0.0.1:7801 -n "$JOBS" -work "$WORK" \
    -timeout 4m -json >"$workdir/$tag.json"
  teardown_grid
  cat "$workdir/$tag.json" >&2
}

run_soak run1
run_soak run2

# Exactly-once is asserted by gridctl chaos itself (non-zero exit on any
# lost or duplicated job); here we additionally require that the
# schedule actually injected faults — a soak that never faulted proves
# nothing.
injected=$(cat "$workdir"/run1-n*.chaos | awk '$4 != "none"' | wc -l)
if [ "$injected" -lt 1 ]; then
  echo "live_chaos: FAIL: chaos schedule injected no faults (check CHAOS_SPEC)" >&2
  exit 1
fi
echo "live_chaos: run1 injected $injected faults across 3 nodes" >&2

# Replay check: every (peer, method, seq) decision both runs drew must
# have the same fate. Traffic volume differs between runs, so the runs
# share a prefix of each per-(peer,method) sequence, not the whole log;
# the client's ephemeral-port peers simply never collide across runs.
for k in 1 2 3; do
  awk '{print $1 "|" $2 "|" $3, $4}' "$workdir/run1-n$k.chaos" | sort >"$workdir/r1-n$k.keyed"
  awk '{print $1 "|" $2 "|" $3, $4}' "$workdir/run2-n$k.chaos" | sort >"$workdir/r2-n$k.keyed"
  if ! join "$workdir/r1-n$k.keyed" "$workdir/r2-n$k.keyed" |
    awk '$2 != $3 { print; exit 1 }' >"$workdir/replay-n$k.diff"; then
    echo "live_chaos: FAIL: node $k drew different fates for the same (peer,method,seq) under seed $SEED:" >&2
    cat "$workdir/replay-n$k.diff" >&2
    exit 1
  fi
done
echo "live_chaos: replay check passed (seed $SEED drew identical fault sequences twice)" >&2

# ---- Phase 3: breaker visibility on a real failure --------------------
echo "live_chaos: breaker phase (no chaos; kill and revive node 3)" >&2
boot_grid brk
n3=${pids[2]}

kill "$n3" 2>/dev/null || true

opened=""
for _ in $(seq 1 60); do
  for port in 7901 7902; do
    if curl -sf "http://127.0.0.1:$port/metrics" | grep -q 'rpc_breaker_transitions_total{to="open"}'; then
      opened=$port
      break 2
    fi
  done
  sleep 1
done
if [ -z "$opened" ]; then
  echo "live_chaos: FAIL: no breaker opened on n1/n2 within 60s of killing n3" >&2
  exit 1
fi
node_of() { echo "127.0.0.1:$((${1} - 100))"; } # metrics 79xx -> rpc 78xx
echo "live_chaos: breaker opened (seen on $(node_of "$opened") metrics)" >&2

"$workdir/gridctl" health -node "$(node_of "$opened")" >"$workdir/health.txt"
cat "$workdir/health.txt" >&2
if ! grep -Eq '7803[[:space:]]+open' "$workdir/health.txt"; then
  echo "live_chaos: FAIL: gridctl health does not show an open breaker for 127.0.0.1:7803" >&2
  exit 1
fi

# Revive node 3 at the same address; successful half-open probes must
# close the breaker again. A tiny soak forces traffic toward it.
"$workdir/gridnode" -listen 127.0.0.1:7803 -bootstrap 127.0.0.1:7801 -cpu 3 \
  >"$workdir/brk-n3-revived.log" 2>&1 &
pids+=($!)
sleep 5
"$workdir/gridctl" chaos -bootstrap 127.0.0.1:7801 -n 10 -work 50ms \
  -timeout 2m >/dev/null 2>&1 || true

closed=""
for _ in $(seq 1 90); do
  if curl -sf "http://127.0.0.1:$opened/metrics" | grep -q 'rpc_breaker_transitions_total{to="closed"}'; then
    closed=yes
    break
  fi
  sleep 1
done
teardown_grid
if [ -z "$closed" ]; then
  echo "live_chaos: FAIL: breaker never closed within 90s of reviving n3" >&2
  exit 1
fi
echo "live_chaos: breaker closed after revival" >&2
echo "live_chaos: PASS (exactly-once under chaos, deterministic replay, breaker open/close visible)" >&2
