#!/usr/bin/env bash
# Live observability smoke test: boot a 3-node TCP grid with metrics
# enabled, run one job through it, scrape /metrics, and reconstruct the
# job's cross-node lifecycle with `gridctl trace`. Exercises the whole
# obs stack end to end (DESIGN.md §8): registry -> Prometheus endpoint,
# trace propagation across inject/own/match/assign/execute/deliver, and
# the grid.stats / grid.trace RPCs.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/gridnode" ./cmd/gridnode
go build -o "$workdir/gridctl" ./cmd/gridctl

"$workdir/gridnode" -listen 127.0.0.1:7501 -metrics-addr 127.0.0.1:7601 \
  >"$workdir/n1.log" 2>&1 &
pids+=($!)
sleep 1
"$workdir/gridnode" -listen 127.0.0.1:7502 -bootstrap 127.0.0.1:7501 \
  -metrics-addr 127.0.0.1:7602 -cpu 8 >"$workdir/n2.log" 2>&1 &
pids+=($!)
"$workdir/gridnode" -listen 127.0.0.1:7503 -bootstrap 127.0.0.1:7501 \
  -metrics-addr 127.0.0.1:7603 -cpu 3 >"$workdir/n3.log" 2>&1 &
pids+=($!)

# Let the ring stabilize and the RN-Tree aggregate.
sleep 4

"$workdir/gridctl" -node 127.0.0.1:7501 -work 2s -n 1 -timeout 90s \
  | tee "$workdir/submit.log"

job_id=$(grep -o 'job=[0-9a-f]\{40\}' "$workdir/submit.log" | head -1 | cut -d= -f2)
if [ -z "$job_id" ]; then
  echo "obs_smoke: FAIL: no job id in submit output" >&2
  exit 1
fi

# The /metrics scrape must be valid Prometheus text with live values.
scrape=$(curl -sf http://127.0.0.1:7601/metrics)
for metric in grid_events_total rpc_server_calls_total chord_lookups_total grid_queue_depth; do
  if ! grep -q "$metric" <<<"$scrape"; then
    echo "obs_smoke: FAIL: $metric missing from /metrics scrape" >&2
    exit 1
  fi
done
curl -sf http://127.0.0.1:7601/debug/pprof/ >/dev/null
curl -sf http://127.0.0.1:7601/healthz >/dev/null

# The trace must reconstruct the cross-node lifecycle. Result delivery
# races the submit acknowledgement, so retry briefly until the final
# stage lands in a trace buffer.
for attempt in $(seq 1 20); do
  if out=$("$workdir/gridctl" trace -node 127.0.0.1:7501 "$job_id" 2>&1); then
    if grep -q 'executed' <<<"$out"; then break; fi
  fi
  sleep 1
done
echo "$out"
# "submitted" is recorded by in-grid clients only; gridctl is an
# external client, so its jobs' traces begin at "injected".
for stage in injected owned matched enqueued started executed result-sent; do
  if ! grep -q " $stage " <<<"$out"; then
    echo "obs_smoke: FAIL: stage '$stage' missing from trace" >&2
    exit 1
  fi
done
# The lifecycle must span more than one node (owner vs run/client).
nodes_in_trace=$(awk '/^[0-9]/ {print $4}' <<<"$out" | sort -u | wc -l)
if [ "$nodes_in_trace" -lt 2 ]; then
  echo "obs_smoke: FAIL: trace covers $nodes_in_trace node(s), want >= 2" >&2
  exit 1
fi

# Stats RPC answers with live counters.
"$workdir/gridctl" stats -node 127.0.0.1:7502 | tee "$workdir/stats.log"
grep -q 'grid_events_total' "$workdir/stats.log"

echo "obs_smoke: PASS (job $job_id traced across $nodes_in_trace nodes)"
