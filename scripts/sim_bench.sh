#!/usr/bin/env bash
# Simulation-kernel benchmark: run the gridsim simbench ladder — a
# declarative series of workload scales — and record per-rung kernel
# throughput (events/sec, wall-per-sim-second, switches/event, peak
# heap/procs) with per-layer attribution in BENCH_sim.json. This is the
# measurement half of the 10k-node scale roadmap item: the baseline a
# scale refactor must beat, and the layer ranking that says where to
# aim it.
#
# Environment knobs:
#   BENCH_RUNFILE  ladder runfile (default scripts/sim_bench.runfile;
#                  keys: scales, grow, budget, alg, maintenance)
#   BENCH_SCALES   override the runfile's scales (comma-separated)
#   BENCH_BUDGET   override the runfile's per-rung wall budget
#   BENCH_OUT      output path (default BENCH_sim.json)
#   BENCH_SEED     gridsim seed (default 1)
#   BENCH_ASSERT   when 1, fail unless the first rung clears a lax
#                  events/sec floor (CI smoke; the checked-in
#                  BENCH_sim.json records the real local numbers)
#   BENCH_FLOOR    that floor (default 5000 events/sec)
set -euo pipefail

cd "$(dirname "$0")/.."

RUNFILE=${BENCH_RUNFILE:-scripts/sim_bench.runfile}
OUT=${BENCH_OUT:-BENCH_sim.json}
SEED=${BENCH_SEED:-1}
ASSERT=${BENCH_ASSERT:-0}
FLOOR=${BENCH_FLOOR:-5000}

workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

# Scale/budget overrides rewrite a copy of the runfile so one checked-in
# ladder serves both CI smoke (one tiny rung) and the full local run.
runfile=$RUNFILE
if [ -n "${BENCH_SCALES:-}" ] || [ -n "${BENCH_BUDGET:-}" ]; then
  grep -v -e '^scales' -e '^budget' "$RUNFILE" >"$workdir/runfile"
  [ -n "${BENCH_SCALES:-}" ] && echo "scales = $BENCH_SCALES" >>"$workdir/runfile"
  [ -n "${BENCH_BUDGET:-}" ] && echo "budget = $BENCH_BUDGET" >>"$workdir/runfile"
  runfile=$workdir/runfile
fi

go build -o "$workdir/gridsim" ./cmd/gridsim
"$workdir/gridsim" -exp simbench -runfile "$runfile" -seed "$SEED" \
  -bench-out "$OUT" -v

extract_first() { # extract_first <json-number-field>
  grep -o "\"$1\": *[0-9.eE+-]*" "$OUT" | head -1 | sed 's/.*: *//'
}
rungs=$(grep -c '"scale":' "$OUT")
eps=$(extract_first events_per_sec)
echo "sim_bench: $rungs rungs in $OUT; first rung at $eps events/sec" >&2

if [ "$ASSERT" = 1 ]; then
  # Flake-tolerant CI gate: the kernel must push a few thousand events
  # per second even on cramped shared runners (local runs do >100k).
  ok=$(awk -v a="$eps" -v b="$FLOOR" 'BEGIN { print (a + 0 > b + 0) ? 1 : 0 }')
  if [ "$ok" != 1 ]; then
    echo "sim_bench: FAIL: first rung $eps events/sec under the $FLOOR floor" >&2
    exit 1
  fi
  echo "sim_bench: PASS ($eps events/sec > $FLOOR floor)" >&2
fi
