#!/usr/bin/env bash
# Live-throughput benchmark: boot a 3-node TCP grid three times — once
# per transport configuration — and measure injection and end-to-end
# throughput from one external client (gridctl bench):
#
#   perdial        one TCP connection per RPC (the pre-pooling baseline)
#   pooled         persistent framed connections, one grid.inject per job
#   pooled_batched persistent framed connections, grid.injectbatch
#
# Results land in BENCH_live.json. Environment knobs:
#   BENCH_JOBS     jobs per configuration        (default 300)
#   BENCH_WORK     per-job synthetic runtime     (default 5ms)
#   BENCH_OUT      output path                   (default BENCH_live.json)
#   BENCH_ASSERT   when 1, fail unless batched injection throughput
#                  beats the per-dial baseline (CI smoke; the checked-in
#                  BENCH_live.json records the stronger local numbers)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=${BENCH_JOBS:-300}
WORK=${BENCH_WORK:-5ms}
OUT=${BENCH_OUT:-BENCH_live.json}
ASSERT=${BENCH_ASSERT:-0}

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/gridnode" ./cmd/gridnode
go build -o "$workdir/gridctl" ./cmd/gridctl

# run_config <name> <node-transport> <client-transport> <batch-flag>
# Boots a fresh 3-node grid, runs one bench, and leaves the JSON result
# line in $workdir/<name>.json.
run_config() {
  local name=$1 ntrans=$2 ctrans=$3 batch=$4
  echo "live_bench: config $name (nodes=$ntrans client=$ctrans batch=$batch)" >&2
  "$workdir/gridnode" -listen 127.0.0.1:7701 -transport "$ntrans" \
    >"$workdir/$name-n1.log" 2>&1 &
  pids+=($!)
  sleep 1
  "$workdir/gridnode" -listen 127.0.0.1:7702 -bootstrap 127.0.0.1:7701 \
    -transport "$ntrans" -cpu 8 >"$workdir/$name-n2.log" 2>&1 &
  pids+=($!)
  "$workdir/gridnode" -listen 127.0.0.1:7703 -bootstrap 127.0.0.1:7701 \
    -transport "$ntrans" -cpu 3 >"$workdir/$name-n3.log" 2>&1 &
  pids+=($!)
  sleep 4 # ring + tree convergence

  local args=(bench -node 127.0.0.1:7701 -n "$JOBS" -work "$WORK" \
    -transport "$ctrans" -timeout 4m -json)
  if [ "$batch" = yes ]; then args+=(-batch); fi
  "$workdir/gridctl" "${args[@]}" >"$workdir/$name.json"

  # Tear the grid down so the next configuration starts clean.
  for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  pids=()
  sleep 1
}

run_config perdial perdial perdial no
run_config pooled pooled pooled no
run_config pooled_batched pooled pooled yes

{
  echo '{'
  echo '  "bench": "live 3-node grid, one external client",'
  echo "  \"jobs_per_config\": $JOBS,"
  echo "  \"work\": \"$WORK\","
  echo '  "note": "inject_jobs_per_sec is submit->owner-ack throughput (the pooled/batched fast path); e2e_jobs_per_sec is submit->result-delivered",'
  echo "  \"perdial\": $(cat "$workdir/perdial.json"),"
  echo "  \"pooled\": $(cat "$workdir/pooled.json"),"
  echo "  \"pooled_batched\": $(cat "$workdir/pooled_batched.json")"
  echo '}'
} >"$OUT"

echo "live_bench: wrote $OUT" >&2

extract() { # extract <file> <json-number-field>
  grep -o "\"$2\":[0-9.eE+-]*" "$1" | head -1 | cut -d: -f2
}
base_inject=$(extract "$workdir/perdial.json" inject_jobs_per_sec)
pool_inject=$(extract "$workdir/pooled.json" inject_jobs_per_sec)
batch_inject=$(extract "$workdir/pooled_batched.json" inject_jobs_per_sec)
echo "live_bench: inject jobs/sec: perdial=$base_inject pooled=$pool_inject pooled+batched=$batch_inject" >&2

if [ "$ASSERT" = 1 ]; then
  # Flake-tolerant CI gate: batched must beat the per-dial baseline at
  # all (the checked-in BENCH_live.json documents the >=2x local run).
  ok=$(awk -v a="$batch_inject" -v b="$base_inject" 'BEGIN { print (a > b) ? 1 : 0 }')
  if [ "$ok" != 1 ]; then
    echo "live_bench: FAIL: batched injection ($batch_inject jobs/s) not faster than per-dial ($base_inject jobs/s)" >&2
    exit 1
  fi
  echo "live_bench: PASS (batched $batch_inject > perdial $base_inject jobs/s)" >&2
fi
