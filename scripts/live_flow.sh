#!/usr/bin/env bash
# Live workflow smoke: boot a 3-node TCP grid with the pub/sub overlay
# on (-notify), run a small diamond DAG through `gridctl flow run`, and
# assert the workflow contract end to end (DESIGN.md §15):
#
#   1. DAG      every stage delivers exactly once (gridctl's exit
#               status checks delivered==stages and zero duplicates),
#               with fan-in stages submitted only after both branches'
#               outputs arrived to bundle as their input.
#   2. Data     the merge stage's input is its dependencies' carried
#               outputs — a non-empty out= on the branches, so the
#               engine's data-passing path is actually exercised.
#
# Environment knobs:
#   FLOW_TIMEOUT  whole-workflow deadline (default 120s)
set -euo pipefail

cd "$(dirname "$0")/.."

TIMEOUT=${FLOW_TIMEOUT:-120s}

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/gridnode" ./cmd/gridnode
go build -o "$workdir/gridctl" ./cmd/gridctl

# Nodes on 7821-7823, metrics on 7921-7923 (live_notify.sh owns 781x).
"$workdir/gridnode" -listen 127.0.0.1:7821 -metrics-addr 127.0.0.1:7921 \
  -notify >"$workdir/n1.log" 2>&1 &
pids+=($!)
sleep 1
"$workdir/gridnode" -listen 127.0.0.1:7822 -bootstrap 127.0.0.1:7821 -cpu 8 \
  -metrics-addr 127.0.0.1:7922 -notify >"$workdir/n2.log" 2>&1 &
pids+=($!)
"$workdir/gridnode" -listen 127.0.0.1:7823 -bootstrap 127.0.0.1:7821 -cpu 3 \
  -metrics-addr 127.0.0.1:7923 -notify >"$workdir/n3.log" 2>&1 &
pids+=($!)
sleep 4 # ring + tree convergence

cat >"$workdir/diamond.flow" <<'EOF'
# Live smoke diamond: two branches fan out of prep and merge back in;
# the branches carry output bytes so merge's input is a real bundle.
flow live-diamond
stage prep work=2s out=2
stage left after=prep work=3s out=1
stage right after=prep work=2s out=1
stage merge after=left,right work=1s
EOF

if ! "$workdir/gridctl" flow run -bootstrap 127.0.0.1:7821 -timeout "$TIMEOUT" \
  -json "$workdir/diamond.flow" >"$workdir/flow.log" 2>&1; then
  echo "live_flow: FAIL: workflow did not complete exactly once" >&2
  cat "$workdir/flow.log" >&2
  for n in 1 2 3; do
    echo "--- node $n log ---" >&2
    tail -20 "$workdir/n$n.log" >&2 || true
  done
  exit 1
fi
cat "$workdir/flow.log" >&2

# The JSON line is the machine-checkable summary; re-assert it here so
# the script fails loudly even if gridctl's own gate ever regresses.
summary=$(tail -1 "$workdir/flow.log")
delivered=$(echo "$summary" | sed -n 's/.*"delivered":\([0-9]*\).*/\1/p')
stages=$(echo "$summary" | sed -n 's/.*"stages":\([0-9]*\).*/\1/p')
dups=$(echo "$summary" | sed -n 's/.*"duplicates":\([0-9]*\).*/\1/p')
if [ "$delivered" != "4" ] || [ "$stages" != "4" ] || [ "$dups" != "0" ]; then
  echo "live_flow: FAIL: want 4/4 stages exactly once, got delivered=$delivered/$stages duplicates=$dups" >&2
  exit 1
fi

# Data passing: the merge stage bundled its dependencies' outputs, so
# the per-stage lines must show non-empty outputs on both branches.
for s in left right; do
  if ! grep -E "^stage $s .*out=1024B" "$workdir/flow.log" >/dev/null; then
    echo "live_flow: FAIL: stage $s carried no output bytes" >&2
    cat "$workdir/flow.log" >&2
    exit 1
  fi
done

echo "live_flow: PASS (4/4 stages exactly once, branch outputs carried)" >&2
